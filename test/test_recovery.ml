(* Tests for rdt_recovery: recovery lines, domino effect, causal
   breakpoints, output commit, and the stable-storage model. *)

module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Consistency = Rdt_pattern.Consistency
module Recovery_line = Rdt_recovery.Recovery_line
module Breakpoint = Rdt_recovery.Breakpoint
module Output_commit = Rdt_recovery.Output_commit
module Storage = Rdt_recovery.Storage

let check = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let run ~protocol ~envname ~n ~messages ~seed =
  let p = Rdt_core.Registry.find_exn protocol in
  let env = Rdt_workloads.Registry.find_exn envname in
  (Rdt_core.Runtime.run
     {
       (Rdt_core.Runtime.default_config env p) with
       Rdt_core.Runtime.n;
       seed;
       max_messages = messages;
     })
    .Rdt_core.Runtime.pattern

(* ------------------------------------------------------------------ *)
(* Recovery lines                                                      *)
(* ------------------------------------------------------------------ *)

let test_line_is_consistent_and_bounded () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:5 ~messages:400 ~seed:21 in
  let bounds = Array.init 5 (fun i -> P.last_index pat i) in
  bounds.(2) <- P.last_index pat 2 / 2;
  let line = Recovery_line.max_consistent_bounded pat bounds in
  check "consistent" true (Consistency.consistent_global pat line);
  check "bounded" true (Array.for_all2 ( >= ) bounds line)

let test_line_is_maximal () =
  let pat = run ~protocol:"bhmr" ~envname:"client-server" ~n:4 ~messages:300 ~seed:5 in
  let bounds = Array.init 4 (fun i -> P.last_index pat i) in
  bounds.(1) <- P.last_index pat 1 / 2;
  let line = Recovery_line.max_consistent_bounded pat bounds in
  (* raising any single coordinate (within bounds) must break consistency *)
  Array.iteri
    (fun i x ->
      if x < bounds.(i) then begin
        let raised = Array.copy line in
        raised.(i) <- x + 1;
        check "raising breaks consistency" false (Consistency.consistent_global pat raised)
      end)
    line

let test_recover_no_crash_is_top () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:4 ~messages:300 ~seed:2 in
  let outcome = Recovery_line.recover pat [] in
  (* with final checkpoints and empty channels, the last global checkpoint
     is consistent: nothing rolls back *)
  Alcotest.(check int) "no domino" 0 outcome.Recovery_line.domino_depth;
  check "nothing lost" true (Array.for_all (( = ) 0) outcome.Recovery_line.lost_events)

let test_recover_validation () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:4 ~messages:100 ~seed:2 in
  Alcotest.check_raises "bad pid" (Invalid_argument "Recovery_line.recover: pid out of range")
    (fun () -> ignore (Recovery_line.recover pat [ { Recovery_line.pid = 9; available = 0 } ]));
  Alcotest.check_raises "dup crash" (Invalid_argument "Recovery_line.recover: duplicate crash")
    (fun () ->
      ignore
        (Recovery_line.recover pat
           [ { Recovery_line.pid = 1; available = 0 }; { Recovery_line.pid = 1; available = 0 } ]))

let test_domino_effect_contrast () =
  (* crash process 0 at its first checkpoint: with `none` on a chatty
     pattern everything cascades; under bhmr the others survive with a
     consistent line *)
  let crash = [ { Recovery_line.pid = 0; available = 1 } ] in
  let pat_none = run ~protocol:"none" ~envname:"client-server" ~n:5 ~messages:600 ~seed:4 in
  let pat_bhmr = run ~protocol:"bhmr" ~envname:"client-server" ~n:5 ~messages:600 ~seed:4 in
  let o_none = Recovery_line.recover pat_none crash in
  let o_bhmr = Recovery_line.recover pat_bhmr crash in
  check "both consistent" true
    (Consistency.consistent_global pat_none o_none.Recovery_line.line
    && Consistency.consistent_global pat_bhmr o_bhmr.Recovery_line.line);
  (* the uncoordinated run should cascade deep; in a client-server chain
     everything depends on everything, so survivors lose heavily *)
  check "domino under none" true (o_none.Recovery_line.domino_depth > 0)

let recovery_line_matches_reference =
  QCheck.Test.make ~name:"recovery line = greatest consistent vector under bounds" ~count:40
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let n = P.n pat in
      let bounds = Array.init n (fun i -> P.last_index pat i) in
      (* give process 0 a lowered bound when possible *)
      if bounds.(0) > 0 then bounds.(0) <- bounds.(0) - 1;
      let line = Recovery_line.max_consistent_bounded pat bounds in
      (* reference: maximum over exhaustive enumeration *)
      let best = ref None in
      Seq.iter
        (fun v ->
          if Array.for_all2 ( >= ) bounds v && Rdt_test_helpers.Naive.consistent_global pat v
          then
            match !best with
            | None -> best := Some (Array.copy v)
            | Some b -> Array.iteri (fun i x -> b.(i) <- max b.(i) x) v)
        (Rdt_test_helpers.Naive.all_global_checkpoints pat);
      match !best with
      | None -> false (* impossible: all-zeros is consistent *)
      | Some b -> b = line)

(* ------------------------------------------------------------------ *)
(* Breakpoints                                                         *)
(* ------------------------------------------------------------------ *)

let test_breakpoint_on_rdt_run () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:5 ~messages:400 ~seed:31 in
  P.iter_ckpts pat (fun c ->
      let id = (c.T.owner, c.T.index) in
      match Breakpoint.compute pat id with
      | None -> Alcotest.fail "breakpoint must exist under RDT"
      | Some bp ->
          check "on the fly when TDV recorded" true
            (bp.Breakpoint.on_the_fly || c.T.tdv = None);
          check "consistent" true (Consistency.consistent_global pat bp.Breakpoint.line);
          Alcotest.(check int) "contains target" (snd id) bp.Breakpoint.line.(fst id))

let test_breakpoint_restore_order () =
  let pat = run ~protocol:"bhmr" ~envname:"client-server" ~n:4 ~messages:300 ~seed:3 in
  let id = (2, P.last_index pat 2 / 2) in
  match Breakpoint.compute pat id with
  | None -> Alcotest.fail "expected a breakpoint"
  | Some bp ->
      let order = Breakpoint.restore_order pat bp in
      Alcotest.(check int) "one per process" (P.n pat) (List.length order);
      (* no checkpoint may causally precede one that appears before it *)
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                check "order respects causality" false
                  (Rdt_pattern.Chains.causally_precedes pat b a))
              rest;
            pairs rest
      in
      pairs order

let test_breakpoint_none_for_useless () =
  let pat = Rdt_test_helpers.Fixtures.zcycle_fixture () in
  check "no breakpoint on a Z-cycle" true (Breakpoint.compute pat (1, 1) = None)

(* ------------------------------------------------------------------ *)
(* Output commit                                                       *)
(* ------------------------------------------------------------------ *)

let test_output_commit () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:4 ~messages:300 ~seed:17 in
  let interval = max 1 (P.last_index pat 1 / 2) in
  (match Output_commit.requirement pat ~pid:1 ~interval with
  | None -> Alcotest.fail "requirement must exist under RDT"
  | Some r ->
      Alcotest.(check int) "one per process" (P.n pat) (List.length r.Output_commit.must_be_stable);
      check "output checkpoint included" true
        (List.mem (1, interval) r.Output_commit.must_be_stable));
  match Output_commit.commit_latency_ckpts pat ~pid:1 ~interval with
  | None -> Alcotest.fail "latency must exist"
  | Some k -> check "latency bounded by n" true (k >= 1 && k <= P.n pat)

let test_output_commit_validation () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:4 ~messages:100 ~seed:17 in
  Alcotest.check_raises "interval 0" (Invalid_argument "Output_commit.requirement: no such interval")
    (fun () -> ignore (Output_commit.requirement pat ~pid:0 ~interval:0))

(* ------------------------------------------------------------------ *)
(* Message logging                                                     *)
(* ------------------------------------------------------------------ *)

let test_message_log_classification () =
  (* one message per class around the line {C(0,1), C(1,1)} *)
  let module B = P.Builder in
  let b = B.create ~n:2 in
  let before = B.send b ~src:0 ~dst:1 in
  B.recv b before;
  (* [crossing] is sent in I_{0,1} but delivered after C_{1,1} *)
  let crossing = B.send b ~src:0 ~dst:1 in
  ignore (B.checkpoint b 0) (* C_{0,1} *);
  ignore (B.checkpoint b 1) (* C_{1,1} *);
  B.recv b crossing;
  (* [orphan] is sent after C_{0,1}, delivered... after C_{1,1} too, so we
     test the orphan class against the *lower* line below *)
  let after = B.send b ~src:0 ~dst:1 in
  B.recv b after;
  let pat = B.finish b in
  let line = [| 1; 1 |] in
  Alcotest.(check (list int)) "in transit" [ crossing ] (Rdt_recovery.Message_log.in_transit pat ~line);
  Alcotest.(check (list int)) "no orphans (consistent line)" []
    (Rdt_recovery.Message_log.orphans pat ~line);
  Alcotest.(check (list int)) "collectible" [ before ]
    (Rdt_recovery.Message_log.collectible_logs pat ~line);
  (* against the inconsistent line {C(0,0), C(1,1)}: [before] and
     [crossing] become orphans *)
  let bad_line = [| 0; 1 |] in
  Alcotest.(check (list int)) "orphans of inconsistent line" [ before ]
    (Rdt_recovery.Message_log.orphans pat ~line:bad_line)

let test_message_log_validation () =
  let pat = Rdt_test_helpers.Fixtures.causal_ping_pong () in
  Alcotest.check_raises "bad line length"
    (Invalid_argument "Message_log: line length mismatch") (fun () ->
      ignore (Rdt_recovery.Message_log.orphans pat ~line:[| 0 |]))

let orphans_empty_iff_consistent =
  QCheck.Test.make ~name:"orphans empty iff the line is consistent" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let ok = ref true in
      Seq.iter
        (fun v ->
          let empty = Rdt_recovery.Message_log.orphans pat ~line:v = [] in
          if empty <> Consistency.consistent_global pat v then ok := false)
        (Rdt_test_helpers.Naive.all_global_checkpoints pat);
      !ok)

let replay_covers_the_cut =
  QCheck.Test.make ~name:"every message is in-transit, collectible or future" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      match Consistency.min_consistent_containing pat [ (0, 0) ] with
      | None -> true
      | Some line ->
          let in_transit = Rdt_recovery.Message_log.in_transit pat ~line in
          let collectible = Rdt_recovery.Message_log.collectible_logs pat ~line in
          let classified m =
            List.mem m in_transit || List.mem m collectible
            || (P.message pat m).Rdt_pattern.Types.send_interval > line.((P.message pat m).Rdt_pattern.Types.src)
          in
          List.for_all classified (List.init (P.num_messages pat) Fun.id)
          && List.for_all (fun m -> not (List.mem m collectible)) in_transit)

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(* ------------------------------------------------------------------ *)

let test_storage_basics () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:3 ~messages:150 ~seed:23 in
  let s = Storage.create pat in
  check "initials stable" true (Storage.is_stable s (0, 0));
  check "others not" false (Storage.is_stable s (0, 1));
  Alcotest.(check int) "count" 3 (Storage.stable_count s);
  Storage.make_stable s (0, 1);
  Storage.make_stable s (0, 2);
  Storage.make_stable s (0, 2);
  check "flushed" true (Storage.is_stable s (0, 2));
  Alcotest.(check int) "idempotent" 5 (Storage.stable_count s);
  let line = Storage.stable_line s in
  Alcotest.(check int) "prefix of 0" 2 line.(0);
  Alcotest.(check int) "prefix of 1" 0 line.(1)

let test_storage_gc () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:3 ~messages:150 ~seed:23 in
  let s = Storage.create pat in
  P.iter_ckpts pat (fun c -> Storage.make_stable s (c.T.owner, c.T.index));
  let total = Storage.stable_count s in
  let line = Array.init 3 (fun i -> P.last_index pat i) in
  let reclaimed = Storage.collect s ~line in
  Alcotest.(check int) "reclaims all but the line and the initials"
    (total - 6)
    reclaimed;
  check "line survivors stable" true
    (Array.to_list line |> List.mapi (fun i x -> Storage.is_stable s (i, x)) |> List.for_all Fun.id)

(* Regression: [collect] used to reclaim the initial checkpoints too,
   after which [stable_line] would report a per-process bound whose base
   [C_{i,0}] was gone — a line recovery could not actually restore. *)
let test_storage_gc_keeps_initials () =
  let pat = run ~protocol:"bhmr" ~envname:"random" ~n:3 ~messages:150 ~seed:23 in
  let s = Storage.create pat in
  P.iter_ckpts pat (fun c -> Storage.make_stable s (c.T.owner, c.T.index));
  let line = Array.init 3 (fun i -> P.last_index pat i) in
  check "initials never collectible" true
    (Storage.collectible s ~line |> List.for_all (fun (_, x) -> x > 0));
  ignore (Storage.collect s ~line);
  for i = 0 to 2 do
    check "initial still stable after collect" true (Storage.is_stable s (i, 0))
  done;
  (* the line stable_line now reports must be fully backed by storage *)
  let sl = Storage.stable_line s in
  Array.iteri
    (fun i x ->
      for y = 0 to x do
        check "stable_line is backed down to its base" true (Storage.is_stable s (i, y))
      done)
    sl;
  (* and collecting again with that line must be a no-op on its base *)
  ignore (Storage.collect s ~line:sl);
  for i = 0 to 2 do
    check "initial survives repeated collection" true (Storage.is_stable s (i, 0))
  done

let () =
  Alcotest.run "rdt_recovery"
    [
      ( "recovery-line",
        [
          Alcotest.test_case "consistent and bounded" `Quick test_line_is_consistent_and_bounded;
          Alcotest.test_case "maximal" `Quick test_line_is_maximal;
          Alcotest.test_case "no crash, no rollback" `Quick test_recover_no_crash_is_top;
          Alcotest.test_case "validation" `Quick test_recover_validation;
          Alcotest.test_case "domino contrast" `Quick test_domino_effect_contrast;
          qt recovery_line_matches_reference;
        ] );
      ( "breakpoint",
        [
          Alcotest.test_case "exists and consistent under RDT" `Quick test_breakpoint_on_rdt_run;
          Alcotest.test_case "restore order" `Quick test_breakpoint_restore_order;
          Alcotest.test_case "none on Z-cycle" `Quick test_breakpoint_none_for_useless;
        ] );
      ( "output-commit",
        [
          Alcotest.test_case "requirement" `Quick test_output_commit;
          Alcotest.test_case "validation" `Quick test_output_commit_validation;
        ] );
      ( "message-log",
        [
          Alcotest.test_case "classification" `Quick test_message_log_classification;
          Alcotest.test_case "validation" `Quick test_message_log_validation;
          qt orphans_empty_iff_consistent;
          qt replay_covers_the_cut;
        ] );
      ( "storage",
        [
          Alcotest.test_case "basics" `Quick test_storage_basics;
          Alcotest.test_case "garbage collection" `Quick test_storage_gc;
          Alcotest.test_case "gc keeps initial checkpoints" `Quick test_storage_gc_keeps_initials;
        ] );
    ]
