(* Property suite for the network-fault substrate.

   Headline: for every protocol in the registry, over several
   environments and every point of a drop/dup/partition grid, runs
   terminate with every message either delivered or reported
   undeliverable, the three offline checkers agree, and RDT still holds
   for every protocol that promises it.  Plus unit tests for the fault
   spec, the reliable transport in isolation, determinism per fault
   kind, and config validation. *)

module Runtime = Rdt_core.Runtime
module Checker = Rdt_core.Checker
module Registry = Rdt_core.Registry
module Protocol = Rdt_core.Protocol
module Faults = Rdt_dist.Faults
module Transport = Rdt_dist.Transport
module Channel = Rdt_dist.Channel
module Rng = Rdt_dist.Rng
module EQ = Rdt_dist.Event_queue

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault spec                                                          *)
(* ------------------------------------------------------------------ *)

let test_faults_validate () =
  let ok s = Faults.validate ~n:4 s = Ok () in
  check "none ok" true (ok Faults.none);
  check "drop ok" true (ok { Faults.none with drop = 0.5 });
  check "drop > 1" false (ok { Faults.none with drop = 1.5 });
  check "dup < 0" false (ok { Faults.none with dup = -0.1 });
  check "reorder needs window" false (ok { Faults.none with reorder = 0.2 });
  check "reorder with window" true (ok { Faults.none with reorder = 0.2; reorder_window = 10 });
  let part between from_t to_t =
    { Faults.none with partitions = [ { Faults.between; from_t; to_t } ] }
  in
  check "partition ok" true (ok (part [ 1; 2 ] 10 20));
  check "partition pid out of range" false (ok (part [ 4 ] 10 20));
  check "partition empty group" false (ok (part [] 10 20));
  check "partition backwards window" false (ok (part [ 1 ] 20 10))

let test_faults_cuts () =
  let s =
    { Faults.none with partitions = [ { Faults.between = [ 1; 2 ]; from_t = 10; to_t = 20 } ] }
  in
  check "cross link inside window" true (Faults.cuts s ~time:10 ~src:0 ~dst:1);
  check "bidirectional" true (Faults.cuts s ~time:15 ~src:1 ~dst:0);
  check "healed at to_t" false (Faults.cuts s ~time:20 ~src:0 ~dst:1);
  check "before from_t" false (Faults.cuts s ~time:9 ~src:0 ~dst:1);
  check "inside the group" false (Faults.cuts s ~time:15 ~src:1 ~dst:2);
  check "among the rest" false (Faults.cuts s ~time:15 ~src:0 ~dst:3);
  check "no partitions" false (Faults.cuts Faults.none ~time:15 ~src:0 ~dst:1)

(* ------------------------------------------------------------------ *)
(* Transport in isolation                                              *)
(* ------------------------------------------------------------------ *)

(* Drive the passive transport with a local event queue until it drains. *)
let drive tp q delivered undeliv =
  let apply now emits =
    ignore now;
    List.iter
      (function
        | Transport.Deliver { msg; _ } -> delivered := msg :: !delivered
        | Transport.Wire { at; wire } -> EQ.schedule q ~time:at wire
        | Transport.Undeliverable { msg; _ } -> undeliv := msg :: !undeliv)
      emits
  in
  let rec loop () =
    match EQ.pop q with
    | None -> ()
    | Some (t, w) ->
        apply t (Transport.handle tp ~now:t w);
        loop ()
  in
  (apply, loop)

let test_transport_fifo_exactly_once () =
  let faults =
    { Faults.none with drop = 0.25; dup = 0.2; reorder = 0.3; reorder_window = 40 }
  in
  let tp =
    Transport.create ~n:2 ~params:Transport.default_params ~faults
      ~channel:(Channel.Uniform (5, 60)) ~rng:(Rng.create 42) ()
  in
  let q = EQ.create () in
  let delivered = ref [] and undeliv = ref [] in
  let apply, loop = drive tp q delivered undeliv in
  for i = 0 to 199 do
    apply 0 (Transport.send tp ~now:0 ~src:0 ~dst:1 i)
  done;
  loop ();
  Alcotest.(check int) "drained" 0 (Transport.in_flight tp);
  let got = List.rev !delivered in
  Alcotest.(check int) "every message accounted for" 200
    (List.length got + List.length !undeliv);
  check "exactly-once and FIFO" true (got = List.sort_uniq compare got);
  let s = Transport.stats tp in
  check "faults were exercised" true
    (s.Transport.packets_dropped > 0 && s.Transport.duplicated > 0 && s.Transport.reordered > 0);
  Alcotest.(check int) "stats agree with deliveries" (List.length got) s.Transport.delivered

let test_transport_partition_heals () =
  (* the link is dead for the first 2000 ticks; retransmission with
     backoff must carry every message across the healing *)
  let faults =
    { Faults.none with partitions = [ { Faults.between = [ 1 ]; from_t = 0; to_t = 2000 } ] }
  in
  let tp =
    Transport.create ~n:2 ~params:Transport.default_params ~faults
      ~channel:(Channel.Uniform (5, 60)) ~rng:(Rng.create 7) ()
  in
  let q = EQ.create () in
  let delivered = ref [] and undeliv = ref [] in
  let apply, loop = drive tp q delivered undeliv in
  for i = 0 to 19 do
    apply 0 (Transport.send tp ~now:0 ~src:0 ~dst:1 i)
  done;
  loop ();
  Alcotest.(check (list int)) "all delivered in order after the heal"
    (List.init 20 (fun i -> i))
    (List.rev !delivered);
  check "nothing abandoned" true (!undeliv = [])

let test_transport_gives_up () =
  (* a fully dead link: every message must come back as Undeliverable,
     in finite time, and the transport must drain *)
  let faults = { Faults.none with drop = 1.0 } in
  let tp =
    Transport.create ~n:2
      ~params:{ Transport.default_params with max_retx = 3 }
      ~faults ~channel:(Channel.Uniform (5, 60)) ~rng:(Rng.create 3) ()
  in
  let q = EQ.create () in
  let delivered = ref [] and undeliv = ref [] in
  let apply, loop = drive tp q delivered undeliv in
  for i = 0 to 9 do
    apply 0 (Transport.send tp ~now:0 ~src:0 ~dst:1 i)
  done;
  loop ();
  check "nothing delivered" true (!delivered = []);
  Alcotest.(check int) "all abandoned" 10 (List.length !undeliv);
  Alcotest.(check int) "drained" 0 (Transport.in_flight tp)

(* ------------------------------------------------------------------ *)
(* The property grid                                                   *)
(* ------------------------------------------------------------------ *)

let environments = [ "random"; "group"; "client-server" ]

let grid =
  List.concat_map
    (fun drop -> List.map (fun dup -> { Faults.none with drop; dup }) [ 0.0; 0.05 ])
    [ 0.0; 0.02; 0.1 ]
  @ [
      {
        Faults.none with
        drop = 0.05;
        partitions = [ { Faults.between = [ 1 ]; from_t = 800; to_t = 2200 } ];
      };
    ]

let run_faulty ?(transport = Transport.default_params) ~protocol ~ename ~faults ~seed () =
  let env = Rdt_workloads.Registry.find_exn ename in
  Runtime.run
    {
      (Runtime.default_config env protocol) with
      Runtime.n = 5;
      seed;
      max_messages = 250;
      faults;
      transport = Some transport;
    }

let test_property_grid () =
  List.iter
    (fun protocol ->
      let pname = Protocol.name protocol in
      List.iter
        (fun ename ->
          List.iteri
            (fun i faults ->
              let label = Printf.sprintf "%s/%s/grid-%d" pname ename i in
              let r = run_faulty ~protocol ~ename ~faults ~seed:(i + 1) () in
              let s = Option.get r.Runtime.transport in
              Alcotest.(check int)
                (label ^ ": every message delivered or undeliverable")
                s.Transport.accepted
                (s.Transport.delivered + s.Transport.undeliverable);
              let c1 = Checker.run r.Runtime.pattern in
              let c2 = Checker.run ~algo:`Chains r.Runtime.pattern in
              let c3 = Checker.run ~algo:`Doubling r.Runtime.pattern in
              check
                (label ^ ": checkers agree")
                true
                (c1.Checker.rdt = c2.Checker.rdt && c2.Checker.rdt = c3.Checker.rdt);
              if Protocol.ensures_rdt protocol then
                check (label ^ ": RDT holds under faults") true c1.Checker.rdt)
            grid)
        environments)
    Registry.all

let test_undeliverable_degradation () =
  (* every packet lost: the run must still terminate, with every message
     reported undeliverable and none in the pattern *)
  let r =
    run_faulty
      ~transport:{ Transport.default_params with max_retx = 3 }
      ~protocol:(Registry.find_exn "bhmr") ~ename:"random"
      ~faults:{ Faults.none with drop = 1.0 }
      ~seed:1 ()
  in
  let s = Option.get r.Runtime.transport in
  check "messages were sent" true (s.Transport.accepted > 0);
  Alcotest.(check int) "none delivered" 0 s.Transport.delivered;
  Alcotest.(check int) "all undeliverable" s.Transport.accepted s.Transport.undeliverable;
  Alcotest.(check int) "pattern has no messages" 0
    r.Runtime.metrics.Rdt_core.Metrics.messages;
  check "trivially RDT" true (Checker.run r.Runtime.pattern).Checker.rdt

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let fault_kinds =
  [
    ("drop", { Faults.none with drop = 0.15 }, fun s -> s.Transport.packets_dropped > 0);
    ("dup", { Faults.none with dup = 0.2 }, fun s -> s.Transport.duplicated > 0);
    ( "reorder",
      { Faults.none with reorder = 0.3; reorder_window = 60 },
      fun s -> s.Transport.reordered > 0 );
    ( "partition",
      {
        Faults.none with
        partitions = [ { Faults.between = [ 0; 2 ]; from_t = 500; to_t = 1500 } ];
      },
      fun s -> s.Transport.packets_dropped > 0 );
  ]

let test_determinism_per_fault_kind () =
  let protocol = Registry.find_exn "bhmr" in
  List.iter
    (fun (label, faults, exercised) ->
      let run seed = run_faulty ~protocol ~ename:"random" ~faults ~seed () in
      let a = run 7 and b = run 7 in
      (* compare before any checker call: the checkers memoize inside the
         pattern, so equality must be judged on fresh results *)
      check (label ^ ": byte-identical pattern") true
        (Rdt_pattern.Pattern.equal a.Runtime.pattern b.Runtime.pattern);
      check (label ^ ": identical metrics") true (a.Runtime.metrics = b.Runtime.metrics);
      check
        (label ^ ": identical retransmission counts")
        true
        (a.Runtime.transport = b.Runtime.transport);
      check (label ^ ": fault exercised") true (exercised (Option.get a.Runtime.transport));
      let c = run 8 in
      check (label ^ ": seed changes the run") true
        (not (Rdt_pattern.Pattern.equal a.Runtime.pattern c.Runtime.pattern)))
    fault_kinds

(* ------------------------------------------------------------------ *)
(* Validation at the config entry points                               *)
(* ------------------------------------------------------------------ *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_runtime_validation () =
  let env = Rdt_workloads.Registry.find_exn "random" in
  let base = Runtime.default_config env (Registry.find_exn "bhmr") in
  let tp = Some Transport.default_params in
  check "faults require a transport" true
    (raises_invalid (fun () ->
         Runtime.run { base with Runtime.faults = { Faults.none with drop = 0.1 } }));
  check "drop out of range" true
    (raises_invalid (fun () ->
         Runtime.run
           { base with Runtime.faults = { Faults.none with drop = 1.5 }; transport = tp }));
  check "reorder without window" true
    (raises_invalid (fun () ->
         Runtime.run
           { base with Runtime.faults = { Faults.none with reorder = 0.1 }; transport = tp }));
  check "partition pid out of range" true
    (raises_invalid (fun () ->
         Runtime.run
           {
             base with
             Runtime.faults =
               {
                 Faults.none with
                 partitions = [ { Faults.between = [ 99 ]; from_t = 0; to_t = 10 } ];
               };
             transport = tp;
           }));
  check "bad retx_timeout" true
    (raises_invalid (fun () ->
         Runtime.run
           { base with Runtime.transport = Some { Transport.default_params with retx_timeout = 0 } }));
  check "bad backoff" true
    (raises_invalid (fun () ->
         Runtime.run
           { base with Runtime.transport = Some { Transport.default_params with backoff = 0.5 } }));
  check "bad channel rejected, not clamped" true
    (raises_invalid (fun () -> Runtime.run { base with Runtime.channel = Channel.Uniform (5, 1) }));
  check "fixed 0 channel rejected" true
    (raises_invalid (fun () -> Runtime.run { base with Runtime.channel = Channel.Fixed 0 }))

let test_crash_sim_validation () =
  let module CS = Rdt_failures.Crash_sim in
  let env = Rdt_workloads.Registry.find_exn "random" in
  let base = CS.default_config env (Registry.find_exn "bhmr") in
  check "crash_sim: faults require a transport" true
    (raises_invalid (fun () ->
         CS.run { base with CS.faults = { Faults.none with drop = 0.1 } }));
  check "crash_sim: bad fault spec" true
    (raises_invalid (fun () ->
         CS.run
           {
             base with
             CS.faults = { Faults.none with dup = 2.0 };
             transport = Some Transport.default_params;
           }));
  check "crash_sim: bad channel rejected" true
    (raises_invalid (fun () -> CS.run { base with CS.channel = Channel.Uniform (0, 5) }))

let () =
  Alcotest.run "rdt_faults"
    [
      ( "faults",
        [
          Alcotest.test_case "validate" `Quick test_faults_validate;
          Alcotest.test_case "partition cuts" `Quick test_faults_cuts;
        ] );
      ( "transport",
        [
          Alcotest.test_case "FIFO exactly-once under heavy faults" `Quick
            test_transport_fifo_exactly_once;
          Alcotest.test_case "partition heals" `Quick test_transport_partition_heals;
          Alcotest.test_case "gives up on a dead link" `Quick test_transport_gives_up;
        ] );
      ( "property",
        [
          Alcotest.test_case "registry x environments x fault grid" `Quick test_property_grid;
          Alcotest.test_case "graceful degradation" `Quick test_undeliverable_degradation;
        ] );
      ( "determinism",
        [ Alcotest.test_case "per fault kind" `Quick test_determinism_per_fault_kind ] );
      ( "validation",
        [
          Alcotest.test_case "runtime entry point" `Quick test_runtime_validation;
          Alcotest.test_case "crash_sim entry point" `Quick test_crash_sim_validation;
        ] );
    ]
