(* Tests for rdt_core: control payloads, predicates, each protocol's state
   machine (driven by hand through the paper's scenarios), the simulation
   runtime, the three RDT checkers, and the minimum-consistent-global-
   checkpoint corollary — across every (environment, protocol) pair. *)

module Control = Rdt_core.Control
module Predicates = Rdt_core.Predicates
module Protocol = Rdt_core.Protocol
module Registry = Rdt_core.Registry
module Runtime = Rdt_core.Runtime
module Checker = Rdt_core.Checker
module Min_gcp = Rdt_core.Min_gcp
module Metrics = Rdt_core.Metrics
module P = Rdt_pattern.Pattern

let check = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Control payloads                                                    *)
(* ------------------------------------------------------------------ *)

let test_control_bits () =
  Alcotest.(check int) "nothing" 0 (Control.bits Control.Nothing);
  Alcotest.(check int) "tdv" 128 (Control.bits (Control.Tdv (Array.make 4 0)));
  Alcotest.(check int) "tdv+causal" (128 + 16)
    (Control.bits
       (Control.Tdv_causal { tdv = Array.make 4 0; causal = Array.make_matrix 4 4 false }));
  Alcotest.(check int) "full" (128 + 4 + 16)
    (Control.bits
       (Control.Full
          { tdv = Array.make 4 0; simple = Array.make 4 false; causal = Array.make_matrix 4 4 false }))

let test_control_tdv_access () =
  let v = [| 1; 2 |] in
  check "nothing" true (Control.tdv Control.Nothing = None);
  check "tdv" true (Control.tdv (Control.Tdv v) = Some v)

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

let test_predicates_new_dep () =
  check "no new dep" false (Predicates.new_dep ~tdv:[| 2; 3 |] ~m_tdv:[| 2; 3 |]);
  check "new dep" true (Predicates.new_dep ~tdv:[| 2; 3 |] ~m_tdv:[| 2; 4 |])

let test_predicates_c1 () =
  let tdv = [| 1; 0; 0 |] and m_tdv = [| 1; 1; 0 |] in
  let m_causal = Array.make_matrix 3 3 false in
  (* no send yet: C1 cannot fire *)
  check "no sends" false
    (Predicates.c1 ~sent_to:[| false; false; false |] ~tdv ~m_tdv ~m_causal);
  (* sent to P2, new dep on P1, sender knows no sibling: fire *)
  check "fires" true (Predicates.c1 ~sent_to:[| false; false; true |] ~tdv ~m_tdv ~m_causal);
  (* sender knows the causal sibling C_{1,?} ~> C_{2,?}: no fire *)
  m_causal.(1).(2) <- true;
  check "sibling known" false
    (Predicates.c1 ~sent_to:[| false; false; true |] ~tdv ~m_tdv ~m_causal)

let test_predicates_c2 () =
  check "same interval, non simple" true
    (Predicates.c2 ~pid:0 ~tdv:[| 3; 0 |] ~m_tdv:[| 3; 1 |] ~m_simple:[| false; true |]);
  check "same interval, simple" false
    (Predicates.c2 ~pid:0 ~tdv:[| 3; 0 |] ~m_tdv:[| 3; 1 |] ~m_simple:[| true; true |]);
  check "older interval" false
    (Predicates.c2 ~pid:0 ~tdv:[| 3; 0 |] ~m_tdv:[| 2; 1 |] ~m_simple:[| false; true |])

let test_predicates_c2' () =
  check "fires" true (Predicates.c2' ~pid:0 ~tdv:[| 3; 0 |] ~m_tdv:[| 3; 1 |]);
  check "no new dep" false (Predicates.c2' ~pid:0 ~tdv:[| 3; 1 |] ~m_tdv:[| 3; 1 |])

let test_predicates_fdas_fdi () =
  check "fdas needs send" false
    (Predicates.c_fdas ~after_first_send:false ~tdv:[| 0; 0 |] ~m_tdv:[| 0; 1 |]);
  check "fdas fires" true
    (Predicates.c_fdas ~after_first_send:true ~tdv:[| 0; 0 |] ~m_tdv:[| 0; 1 |]);
  check "fdi fires without send" true (Predicates.c_fdi ~tdv:[| 0; 0 |] ~m_tdv:[| 0; 1 |])

(* ------------------------------------------------------------------ *)
(* Protocol state machines, driven by hand                             *)
(* ------------------------------------------------------------------ *)

(* The Figure 4 / C2 scenario: a causal chain leaves P0's current interval
   and returns after crossing a checkpoint at P1 — P0 must break it. *)
let test_bhmr_c2_scenario () =
  let module B = Rdt_core.Bhmr in
  let p0 = B.create ~n:2 ~pid:0 and p1 = B.create ~n:2 ~pid:1 in
  B.on_checkpoint p0;
  B.on_checkpoint p1;
  (* P0 sends m_a to P1 *)
  let ma = B.make_payload p0 ~dst:1 in
  check "P1 not forced by m_a" false (B.must_force p1 ~src:0 ma);
  B.absorb p1 ~src:0 ma;
  (* P1 takes a basic checkpoint: the returning chain is now non-simple *)
  B.on_checkpoint p1;
  let mb = B.make_payload p1 ~dst:0 in
  check "P0 forced (C2)" true (B.must_force p0 ~src:1 mb)

(* Same exchange without the checkpoint at P1: the chain stays simple and
   P0 must NOT be forced. *)
let test_bhmr_c2_negative () =
  let module B = Rdt_core.Bhmr in
  let p0 = B.create ~n:2 ~pid:0 and p1 = B.create ~n:2 ~pid:1 in
  B.on_checkpoint p0;
  B.on_checkpoint p1;
  let ma = B.make_payload p0 ~dst:1 in
  B.absorb p1 ~src:0 ma;
  let mb = B.make_payload p1 ~dst:0 in
  check "P0 not forced" false (B.must_force p0 ~src:1 mb);
  (* FDAS, in contrast, forces here: P0 has sent and m_b carries a new
     dependency on P1 *)
  let module F = Rdt_core.Fdas in
  let f0 = F.create ~n:2 ~pid:0 and f1 = F.create ~n:2 ~pid:1 in
  F.on_checkpoint f0;
  F.on_checkpoint f1;
  let fa = F.make_payload f0 ~dst:1 in
  F.absorb f1 ~src:0 fa;
  let fb = F.make_payload f1 ~dst:0 in
  check "FDAS forced" true (F.must_force f0 ~src:1 fb)

(* The Figure 3 / C1 scenario with three processes: the sender's causal
   matrix knows a sibling, so the receiver does not need to break the
   chain — knowledge FDAS does not have. *)
let test_bhmr_c1_sibling_knowledge () =
  let module B = Rdt_core.Bhmr in
  let n = 3 in
  let p = Array.init n (fun pid -> B.create ~n ~pid) in
  Array.iter B.on_checkpoint p;
  (* P1 sends m1 to P2; P2 acknowledges to P1, so P1 learns that an
     on-line trackable path C_{1,1} ~> C_{2,1} exists *)
  let m1 = B.make_payload p.(1) ~dst:2 in
  check "P2 not forced" false (B.must_force p.(2) ~src:1 m1);
  B.absorb p.(2) ~src:1 m1;
  let m2 = B.make_payload p.(2) ~dst:1 in
  check "P1 not forced" false (B.must_force p.(1) ~src:2 m2);
  B.absorb p.(1) ~src:2 m2;
  (* P0 sends to P2 (sent_to[2] becomes true) *)
  let _to_p2 = B.make_payload p.(0) ~dst:2 in
  (* P1 now sends m4 to P0 carrying new deps on P1 and P2, but its causal
     matrix knows the sibling C_{1,·} ~> C_{2,·}: C1 must not fire *)
  let m4 = B.make_payload p.(1) ~dst:0 in
  check "P0 not forced (sibling known)" false (B.must_force p.(0) ~src:1 m4)

(* Same scenario without the acknowledgement: P1 does not know whether m1
   arrived, so the non-causal chain towards P2 might have no sibling and
   P0 must break it. *)
let test_bhmr_c1_fires_without_knowledge () =
  let module B = Rdt_core.Bhmr in
  let n = 3 in
  let p = Array.init n (fun pid -> B.create ~n ~pid) in
  Array.iter B.on_checkpoint p;
  let _m1 = B.make_payload p.(1) ~dst:2 in
  (* no delivery, no ack *)
  let _to_p2 = B.make_payload p.(0) ~dst:2 in
  let m4 = B.make_payload p.(1) ~dst:0 in
  check "P0 forced (no sibling known)" true (B.must_force p.(0) ~src:1 m4)

let test_bhmr_tdv_maintenance () =
  let module B = Rdt_core.Bhmr in
  let p0 = B.create ~n:2 ~pid:0 and p1 = B.create ~n:2 ~pid:1 in
  B.on_checkpoint p0;
  B.on_checkpoint p1;
  (match B.tdv p0 with
  | Some v -> Alcotest.(check (array int)) "after initial ckpt" [| 1; 0 |] v
  | None -> Alcotest.fail "expected a TDV");
  let ma = B.make_payload p0 ~dst:1 in
  B.absorb p1 ~src:0 ma;
  (match B.tdv p1 with
  | Some v -> Alcotest.(check (array int)) "merged" [| 1; 1 |] v
  | None -> Alcotest.fail "expected a TDV");
  B.on_checkpoint p1;
  match B.tdv p1 with
  | Some v -> Alcotest.(check (array int)) "after ckpt" [| 1; 2 |] v
  | None -> Alcotest.fail "expected a TDV"

let test_simple_protocols_forcing_rules () =
  (* CBR forces on any delivery into a non-fresh interval *)
  let module C = Rdt_core.Cbr in
  let c = C.create ~n:2 ~pid:0 in
  C.on_checkpoint c;
  check "cbr fresh: no force" false (C.must_force c ~src:1 Control.Nothing);
  C.absorb c ~src:1 Control.Nothing;
  check "cbr second delivery: force" true (C.must_force c ~src:1 Control.Nothing);
  C.on_checkpoint c;
  check "cbr after ckpt: no force" false (C.must_force c ~src:1 Control.Nothing);
  (* NRAS forces only after a send *)
  let module N = Rdt_core.Nras in
  let s = N.create ~n:2 ~pid:0 in
  N.on_checkpoint s;
  N.absorb s ~src:1 Control.Nothing;
  check "nras deliveries ok" false (N.must_force s ~src:1 Control.Nothing);
  ignore (N.make_payload s ~dst:1);
  check "nras after send: force" true (N.must_force s ~src:1 Control.Nothing);
  (* CAS asks for a checkpoint after each send *)
  check "cas force_after_send" true Rdt_core.Cas.force_after_send;
  check "nras not after send" false Rdt_core.Nras.force_after_send

let test_bcs_scenario () =
  (* an arriving message from a later checkpoint index forces a
     checkpoint; one from the same or an earlier index does not *)
  let module B = Rdt_core.Bcs in
  let p0 = B.create ~n:2 ~pid:0 and p1 = B.create ~n:2 ~pid:1 in
  B.on_checkpoint p0;
  B.on_checkpoint p1;
  let ma = B.make_payload p0 ~dst:1 in
  check "same index: no force" false (B.must_force p1 ~src:0 ma);
  B.absorb p1 ~src:0 ma;
  B.on_checkpoint p0;
  B.on_checkpoint p0;
  let mb = B.make_payload p0 ~dst:1 in
  check "later index: force" true (B.must_force p1 ~src:0 mb);
  B.absorb p1 ~src:0 mb;
  (* after absorbing, P1 has jumped to P0's index *)
  let mc = B.make_payload p0 ~dst:1 in
  check "caught up: no force" false (B.must_force p1 ~src:0 mc)

let test_registry () =
  Alcotest.(check int) "10 protocols" 10 (List.length Registry.all);
  check "find bhmr" true (Registry.find "bhmr" <> None);
  check "find nothing" true (Registry.find "nope" = None);
  check "rdt list excludes none" true
    (List.for_all Protocol.ensures_rdt Registry.rdt_protocols);
  Alcotest.check_raises "find_exn"
    (Invalid_argument
       "unknown protocol \"nope\" (valid: cbr, nras, cas, fdi, fdas, bhmr-v2, bhmr-v1, bhmr, bcs, none)")
    (fun () -> ignore (Registry.find_exn "nope"))

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let env name = Rdt_workloads.Registry.find_exn name

let run ?(n = 5) ?(seed = 11) ?(messages = 400) ?(envname = "random") pname =
  let protocol = Registry.find_exn pname in
  Runtime.run
    {
      (Runtime.default_config (env envname) protocol) with
      Runtime.n;
      seed;
      max_messages = messages;
    }

let test_runtime_deterministic () =
  let a = run "bhmr" and b = run "bhmr" in
  Alcotest.(check int) "same forced" a.Runtime.metrics.Metrics.forced b.Runtime.metrics.Metrics.forced;
  Alcotest.(check int) "same basic" a.Runtime.metrics.Metrics.basic b.Runtime.metrics.Metrics.basic;
  check "same pattern summary" true
    (Format.asprintf "%a" P.pp_summary a.Runtime.pattern
    = Format.asprintf "%a" P.pp_summary b.Runtime.pattern)

let test_runtime_seed_matters () =
  let a = run ~seed:1 "bhmr" and b = run ~seed:2 "bhmr" in
  check "different runs" true
    (a.Runtime.metrics.Metrics.forced <> b.Runtime.metrics.Metrics.forced
    || a.Runtime.metrics.Metrics.duration <> b.Runtime.metrics.Metrics.duration)

let test_runtime_message_budget () =
  let r = run ~messages:123 "none" in
  Alcotest.(check int) "budget respected" 123 r.Runtime.metrics.Metrics.messages;
  Alcotest.(check int) "all delivered" 123 (P.num_messages r.Runtime.pattern)

let test_runtime_valid_pattern () =
  List.iter
    (fun pname ->
      let r = run pname in
      match P.validate r.Runtime.pattern with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s produced an invalid pattern: %s" pname e)
    (List.map Protocol.name Registry.all)

let test_runtime_bad_config () =
  Alcotest.check_raises "n too small" (Invalid_argument "Runtime: n must be >= 2") (fun () ->
      ignore
        (Runtime.run
           { (Runtime.default_config (env "random") (Registry.find_exn "bhmr")) with Runtime.n = 1 }))

let test_runtime_forced_counts_match_pattern () =
  List.iter
    (fun pname ->
      let r = run pname in
      Alcotest.(check int)
        (pname ^ " forced count = pattern forced count")
        r.Runtime.metrics.Metrics.forced
        (P.count_kind r.Runtime.pattern Rdt_pattern.Types.Forced))
    [ "bhmr"; "fdas"; "cbr"; "cas" ]

(* ------------------------------------------------------------------ *)
(* The RDT matrix: every protocol × every environment                  *)
(* ------------------------------------------------------------------ *)

let protocols_under_test = List.map Protocol.name Registry.rdt_protocols

let environments = List.map (fun (n, _, _) -> n) Rdt_workloads.Registry.all

let test_rdt_matrix () =
  List.iter
    (fun envname ->
      List.iter
        (fun pname ->
          let r = run ~envname ~n:4 ~messages:250 ~seed:5 pname in
          let report = Checker.run r.Runtime.pattern in
          if not report.Checker.rdt then
            Alcotest.failf "%s on %s violated RDT: %a" pname envname Checker.pp_report report)
        protocols_under_test)
    environments

let test_rdt_checkers_agree_on_protocol_runs () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:200 pname in
      let a = (Checker.run r.Runtime.pattern).Checker.rdt in
      let b = (Checker.run ~algo:`Chains r.Runtime.pattern).Checker.rdt in
      let c = (Checker.run ~algo:`Doubling r.Runtime.pattern).Checker.rdt in
      check (pname ^ ": checkers agree") true (a = b && b = c && a = true))
    protocols_under_test

let test_none_violates_rdt () =
  (* independent checkpointing on a chatty workload must create hidden
     dependencies *)
  let r = run ~envname:"client-server" ~n:5 ~messages:400 "none" in
  let report = Checker.run r.Runtime.pattern in
  check "RDT violated" false report.Checker.rdt;
  check "violations reported" true (report.Checker.violations <> []);
  check "chains checker agrees" false (Checker.run ~algo:`Chains r.Runtime.pattern).Checker.rdt;
  check "doubling checker agrees" false (Checker.run ~algo:`Doubling r.Runtime.pattern).Checker.rdt

let test_online_tdv_consistent () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:250 pname in
      check (pname ^ ": online TDV = offline replay") true
        (Checker.online_tdv_consistent r.Runtime.pattern))
    [ "fdi"; "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ]

let test_corollary_45 () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:200 ~seed:3 pname in
      check (pname ^ ": Corollary 4.5") true (Min_gcp.corollary_holds r.Runtime.pattern))
    protocols_under_test

let test_corollary_45_fails_without_rdt () =
  let r = run ~envname:"client-server" ~n:5 ~messages:400 "none" in
  check "corollary needs RDT" false (Min_gcp.corollary_holds r.Runtime.pattern)

let test_bcs_no_useless_but_not_rdt () =
  (* BCS keeps every checkpoint useful in every environment… *)
  List.iter
    (fun envname ->
      let r = run ~envname ~n:4 ~messages:250 ~seed:5 "bcs" in
      let pat = r.Runtime.pattern in
      P.iter_ckpts pat (fun c ->
          if
            Rdt_pattern.Consistency.useless pat
              (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index)
          then Alcotest.failf "bcs produced a useless checkpoint on %s" envname))
    environments;
  (* …but does not ensure RDT: some run must exhibit a hidden dependency *)
  let violated = ref false in
  List.iter
    (fun envname ->
      List.iter
        (fun seed ->
          if not !violated then
            let r = run ~envname ~n:5 ~messages:400 ~seed "bcs" in
            if not (Checker.run r.Runtime.pattern).Checker.rdt then violated := true)
        [ 1; 2; 3 ])
    environments;
  check "bcs violates RDT somewhere" true !violated

let test_no_useless_checkpoints_under_rdt () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:250 ~seed:9 pname in
      let pat = r.Runtime.pattern in
      P.iter_ckpts pat (fun c ->
          if Rdt_pattern.Consistency.useless pat (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index)
          then Alcotest.failf "%s produced a useless checkpoint" pname))
    protocols_under_test

let test_hierarchy_no_violations () =
  List.iter
    (fun envname ->
      List.iter
        (fun pname ->
          let r = run ~envname ~n:5 ~messages:400 ~seed:2 pname in
          match r.Runtime.hierarchy_violations with
          | [] -> ()
          | (w, s) :: _ ->
              Alcotest.failf "%s on %s: predicate %s fired without %s" pname envname w s)
        [ "fdas"; "bhmr-v2"; "bhmr-v1"; "bhmr" ])
    environments

let test_conservativeness_ordering () =
  (* mean forced checkpoints over a few seeds: the paper's generality
     hierarchy — each BHMR variant is at most as conservative as FDAS *)
  let mean pname =
    let seeds = [ 1; 2; 3; 4 ] in
    let total =
      List.fold_left
        (fun acc seed -> acc + (run ~seed ~n:6 ~messages:600 pname).Runtime.metrics.Metrics.forced)
        0 seeds
    in
    float_of_int total /. 4.0
  in
  let fdas = mean "fdas" and bhmr = mean "bhmr" and v1 = mean "bhmr-v1" and v2 = mean "bhmr-v2" in
  check "bhmr <= fdas" true (bhmr <= fdas +. 1e-9);
  check "v1 <= fdas" true (v1 <= fdas +. 1e-9);
  check "v2 <= fdas" true (v2 <= fdas +. 1e-9);
  check "bhmr <= v2" true (bhmr <= v2 +. 1e-9)

let test_min_gcp_of_tdv_matches_brute () =
  let r = run ~n:4 ~messages:200 ~seed:8 "bhmr" in
  let pat = r.Runtime.pattern in
  P.iter_ckpts pat (fun c ->
      let id = (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) in
      let online = Min_gcp.of_tdv pat id in
      match Min_gcp.minimum pat id with
      | Some brute -> Alcotest.(check (array int)) "min gcp" brute online
      | None -> Alcotest.fail "no consistent GCP under RDT?")

let test_max_gcp_exists_under_rdt () =
  let r = run ~n:4 ~messages:200 ~seed:8 "bhmr" in
  let pat = r.Runtime.pattern in
  P.iter_ckpts pat (fun c ->
      let id = (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) in
      match Min_gcp.maximum pat id with
      | Some v ->
          check "consistent" true (Rdt_pattern.Consistency.consistent_global pat v);
          check "contains target" true (v.(fst id) = snd id)
      | None -> Alcotest.fail "no max consistent GCP under RDT?")

(* Lemma 4.1: under the protocol there cannot exist two on-line trackable
   R-paths C_{i,x} ~> C_{k,z-1} and C_{k,z} ~> C_{i,x} — a dependency of a
   checkpoint on a *later* checkpoint of the same process would make
   C_{k,z-1}..C_{k,z} un-recoverable.  The conjunction is possible in
   unconstrained patterns (the `none` baseline exhibits it); every RDT
   protocol must exclude it. *)
let lemma_41_violations pat =
  let tdv = Rdt_pattern.Tdv.compute pat in
  let bad = ref 0 in
  let n = P.n pat in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      if i <> k then
        for x = 0 to P.last_index pat i do
          for z = 1 to P.last_index pat k do
            if
              Rdt_pattern.Tdv.trackable tdv (i, x) (k, z - 1)
              && Rdt_pattern.Tdv.trackable tdv (k, z) (i, x)
            then incr bad
          done
        done
    done
  done;
  !bad

let test_lemma_41 () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:250 ~seed:3 pname in
      Alcotest.(check int) (pname ^ ": lemma 4.1") 0 (lemma_41_violations r.Runtime.pattern))
    protocols_under_test;
  let r = run ~n:4 ~messages:250 ~seed:3 "none" in
  check "baseline violates lemma 4.1" true (lemma_41_violations r.Runtime.pattern > 0)

(* Lemma 4.2: a message m from I_{i,x} to I_{j,y} extends every trackable
   dependency of C_{i,x} to C_{j,y}.  Not universal — m may have been sent
   before the dependency reached P_i — so it is exactly where the
   protocols earn their keep. *)
let lemma_42_holds pat =
  let tdv = Rdt_pattern.Tdv.compute pat in
  let ok = ref true in
  Array.iter
    (fun (m : Rdt_pattern.Types.message) ->
      let src_vec = Rdt_pattern.Tdv.at tdv (m.src, m.send_interval) in
      let dst_vec = Rdt_pattern.Tdv.at tdv (m.dst, m.recv_interval) in
      Array.iteri (fun k z -> if dst_vec.(k) < z then ok := false) src_vec;
      if dst_vec.(m.src) < m.send_interval then ok := false)
    (P.messages pat);
  !ok

let test_lemma_42 () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:250 ~seed:6 pname in
      check (pname ^ ": lemma 4.2") true (lemma_42_holds r.Runtime.pattern))
    protocols_under_test;
  let r = run ~envname:"client-server" ~n:5 ~messages:400 ~seed:1 "none" in
  check "baseline violates lemma 4.2" false (lemma_42_holds r.Runtime.pattern)

(* Lemma 4.3: under the protocol, trackability is transitive.  Like
   Lemma 4.2 this is NOT universal (a chain realising the second leg may
   leave its interval before the first dependency arrived), so it is
   tested on protocol runs, not on arbitrary patterns. *)
let lemma_43_holds pat =
  let tdv = Rdt_pattern.Tdv.compute pat in
  let cks =
    P.fold_ckpts pat ~init:[] ~f:(fun acc c ->
        (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) :: acc)
  in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          List.for_all
            (fun c ->
              (not (Rdt_pattern.Tdv.trackable tdv a b && Rdt_pattern.Tdv.trackable tdv b c))
              || Rdt_pattern.Tdv.trackable tdv a c)
            cks)
        cks)
    cks

let test_lemma_43 () =
  List.iter
    (fun pname ->
      let r = run ~n:4 ~messages:150 ~seed:2 pname in
      check (pname ^ ": lemma 4.3") true (lemma_43_holds r.Runtime.pattern))
    protocols_under_test

(* Definitional subtlety, pinned: the event-pattern protocols realise the
   literal per-interval Definition 3.3 (every Z-path leaving an interval
   has a causal sibling leaving the *same* interval); the TDV family only
   guarantees vector-level trackability, and strict gaps do occur in its
   runs even though RDT (the TDV property) holds. *)
let test_strict_definition_gap () =
  List.iter
    (fun pname ->
      List.iter
        (fun seed ->
          let r = run ~envname:"random" ~n:5 ~messages:300 ~seed pname in
          Alcotest.(check int)
            (pname ^ ": no strict gaps")
            0
            (Checker.strict_gaps r.Runtime.pattern))
        [ 1; 2; 3 ])
    [ "cbr"; "nras"; "cas" ];
  let bhmr_gaps = ref 0 in
  List.iter
    (fun seed ->
      let r = run ~envname:"random" ~n:5 ~messages:300 ~seed "bhmr" in
      bhmr_gaps := !bhmr_gaps + Checker.strict_gaps r.Runtime.pattern;
      (* and yet the RDT property itself holds *)
      check "RDT still holds" true (Checker.run r.Runtime.pattern).Checker.rdt)
    [ 1; 2; 3 ];
  check "bhmr has strict gaps" true (!bhmr_gaps > 0)

(* Wang's direct calculations agree with the orphan-elimination fixpoints
   on RDT patterns, for singletons and for cross-process pairs. *)
let test_wang_direct_calculations () =
  List.iter
    (fun (pname, envname) ->
      let r = run ~envname ~n:4 ~messages:250 ~seed:6 pname in
      let pat = r.Runtime.pattern in
      let cks =
        P.fold_ckpts pat ~init:[] ~f:(fun acc c ->
            (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index) :: acc)
      in
      let sets =
        List.map (fun c -> [ c ]) cks
        @ List.concat_map
            (fun a ->
              List.filter_map
                (fun b -> if fst a < fst b && (snd a + snd b) mod 3 = 0 then Some [ a; b ] else None)
                cks)
            cks
      in
      List.iter
        (fun set ->
          let mn_direct = Min_gcp.minimum_by_tdv pat set in
          let mn_fix = Min_gcp.minimum_of_set pat set in
          if mn_direct <> mn_fix then
            Alcotest.failf "%s/%s: minimum_by_tdv disagrees with the fixpoint" pname envname;
          let mx_direct = Min_gcp.maximum_by_rgraph pat set in
          let mx_fix = Min_gcp.maximum_of_set pat set in
          if mx_direct <> mx_fix then
            Alcotest.failf "%s/%s: maximum_by_rgraph disagrees with the fixpoint" pname envname)
        sets)
    [ ("bhmr", "random"); ("fdas", "client-server"); ("cbr", "prodcons") ]

(* Checker coherence on arbitrary (protocol-free) patterns: the three
   verdicts must agree even on RDT-violating patterns. *)
let checkers_agree_on_random_patterns =
  QCheck.Test.make ~name:"three RDT checkers agree on random patterns" ~count:120
    Rdt_test_helpers.Gen.pattern_arbitrary (fun pat ->
      let a = (Checker.run pat).Checker.rdt in
      let b = (Checker.run ~algo:`Chains pat).Checker.rdt in
      let c = (Checker.run ~algo:`Doubling pat).Checker.rdt in
      a = b && b = c)

let corollary_iff_checkable =
  QCheck.Test.make ~name:"RDT implies Corollary 4.5 on random patterns" ~count:60
    Rdt_test_helpers.Gen.small_pattern_arbitrary (fun pat ->
      let rdt = (Checker.run pat).Checker.rdt in
      (not rdt) || Min_gcp.corollary_holds pat)

(* ------------------------------------------------------------------ *)
(* Regressions                                                         *)
(* ------------------------------------------------------------------ *)

(* A stub protocol whose predicate values break the expected generality
   hierarchy in several places at once, so [hierarchy_violations] has
   more than one entry to order. *)
let violating_protocol : Protocol.t =
  (module struct
    type state = unit

    let name = "violating-stub"
    let describe = "test stub firing predicates out of hierarchy order"
    let ensures_rdt = false
    let ensures_no_useless = false
    let create ~n:_ ~pid:_ = ()
    let copy () = ()
    let on_checkpoint () = ()
    let make_payload () ~dst:_ = Control.Nothing
    let force_after_send = false
    let must_force () ~src:_ _ = false
    let absorb () ~src:_ _ = ()
    let tdv () = None
    let payload_bits ~n:_ = 0

    let predicates () ~src:_ _ =
      [ ("c1", true); ("c2", true); ("c2'", true); ("c_fdas", false); ("c_fdi", true) ]
  end)

let test_hierarchy_violations_sorted () =
  (* Hashtbl.fold order is unspecified and differs across OCaml versions;
     the reported violations must come out sorted on both runtime paths *)
  let expected = [ ("c1", "c_fdas"); ("c2", "c_fdas"); ("c2'", "c_fdas") ] in
  let run_with ?transport () =
    Runtime.run
      {
        (Runtime.default_config (env "random") violating_protocol) with
        Runtime.n = 4;
        seed = 5;
        max_messages = 100;
        transport;
      }
  in
  let reliable = run_with () in
  check "reliable path sorted" true (reliable.Runtime.hierarchy_violations = expected);
  let faulty = run_with ~transport:Rdt_dist.Transport.default_params () in
  check "faulty path sorted" true (faulty.Runtime.hierarchy_violations = expected)

let test_basic_continues_while_draining () =
  (* the send budget stops *sends*, not the computation: with a channel
     delay far longer than the whole sending phase, every delivery
     executes after the last send, and the basic-checkpoint timer must
     keep covering those tail intervals until the channels drain *)
  let check_path name transport =
    let tr = Rdt_obs.Trace.ring ~capacity:65536 in
    let r =
      Runtime.run
        {
          (Runtime.default_config (env "random") (Registry.find_exn "bhmr")) with
          Runtime.n = 4;
          seed = 2;
          max_messages = 12;
          channel = Rdt_dist.Channel.Uniform (8000, 9000);
          basic_period = (200, 400);
          transport;
          trace = tr;
        }
    in
    let last_send = ref 0 and last_basic = ref 0 in
    List.iter
      (fun ev ->
        match ev with
        | Rdt_obs.Trace.Send { time; _ } -> last_send := max !last_send time
        | Rdt_obs.Trace.Ckpt { kind = Rdt_pattern.Types.Basic; time; _ } ->
            last_basic := max !last_basic time
        | _ -> ())
      (Rdt_obs.Trace.events tr);
    check (name ^ ": messages all delivered") true
      (P.num_messages r.Runtime.pattern = r.Runtime.metrics.Metrics.messages);
    if not (!last_basic > !last_send) then
      Alcotest.failf "%s: no basic checkpoint after the last send (send t=%d, basic t=%d)"
        name !last_send !last_basic
  in
  check_path "reliable" None;
  check_path "faulty" (Some Rdt_dist.Transport.default_params)

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_checker_units_and_unknown_tracked () =
  let r = run ~n:4 ~messages:250 ~seed:3 "none" in
  let rg = Checker.run r.Runtime.pattern in
  let ch = Checker.run ~algo:`Chains r.Runtime.pattern in
  let db = Checker.run ~algo:`Doubling r.Runtime.pattern in
  check "baseline violates RDT" true (not rg.Checker.rdt);
  check "verdicts agree" true (rg.Checker.rdt = ch.Checker.rdt && ch.Checker.rdt = db.Checker.rdt);
  (* what [checked] counts is carried explicitly, never cross-compared *)
  check "rgraph counts rollback dependencies" true (rg.Checker.units = Checker.R_dependencies);
  check "chains counts rollback dependencies" true (ch.Checker.units = Checker.R_dependencies);
  check "doubling counts CM-paths" true (db.Checker.units = Checker.Cm_paths);
  check "populations differ" true (db.Checker.checked <> rg.Checker.checked);
  check "rgraph names a TDV witness" true
    (rg.Checker.violations <> []
    && List.for_all (fun v -> v.Checker.tracked <> None) rg.Checker.violations);
  check "chain search has no TDV witness" true
    (ch.Checker.violations <> []
    && List.for_all (fun v -> v.Checker.tracked = None) ch.Checker.violations);
  (* rendering: an unknown witness is stated, not printed as an entry *)
  let v = List.hd ch.Checker.violations in
  check "honest rendering" true
    (string_contains (Format.asprintf "%a" Checker.pp_violation v) "no TDV witness");
  check "units rendered" true
    (string_contains (Format.asprintf "%a" Checker.pp_report db) "CM-paths"
    && string_contains (Format.asprintf "%a" Checker.pp_report rg) "rollback dependencies")

let () =
  Alcotest.run "rdt_core"
    [
      ( "regressions",
        [
          Alcotest.test_case "hierarchy violations sorted" `Quick
            test_hierarchy_violations_sorted;
          Alcotest.test_case "basic checkpoints while channels drain" `Quick
            test_basic_continues_while_draining;
          Alcotest.test_case "checker units and unknown witnesses" `Quick
            test_checker_units_and_unknown_tracked;
        ] );
      ( "control",
        [
          Alcotest.test_case "bits" `Quick test_control_bits;
          Alcotest.test_case "tdv access" `Quick test_control_tdv_access;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "new_dep" `Quick test_predicates_new_dep;
          Alcotest.test_case "c1" `Quick test_predicates_c1;
          Alcotest.test_case "c2" `Quick test_predicates_c2;
          Alcotest.test_case "c2'" `Quick test_predicates_c2';
          Alcotest.test_case "fdas/fdi" `Quick test_predicates_fdas_fdi;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "bhmr C2 scenario (fig. 4)" `Quick test_bhmr_c2_scenario;
          Alcotest.test_case "bhmr C2 negative" `Quick test_bhmr_c2_negative;
          Alcotest.test_case "bhmr C1 sibling knowledge (fig. 3)" `Quick
            test_bhmr_c1_sibling_knowledge;
          Alcotest.test_case "bhmr C1 fires without knowledge" `Quick
            test_bhmr_c1_fires_without_knowledge;
          Alcotest.test_case "bhmr TDV maintenance" `Quick test_bhmr_tdv_maintenance;
          Alcotest.test_case "event-pattern protocols" `Quick test_simple_protocols_forcing_rules;
          Alcotest.test_case "bcs index rule" `Quick test_bcs_scenario;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "deterministic" `Quick test_runtime_deterministic;
          Alcotest.test_case "seed matters" `Quick test_runtime_seed_matters;
          Alcotest.test_case "message budget" `Quick test_runtime_message_budget;
          Alcotest.test_case "valid patterns" `Quick test_runtime_valid_pattern;
          Alcotest.test_case "bad config" `Quick test_runtime_bad_config;
          Alcotest.test_case "forced counts" `Quick test_runtime_forced_counts_match_pattern;
        ] );
      ( "rdt-property",
        [
          Alcotest.test_case "all protocols × all environments" `Slow test_rdt_matrix;
          Alcotest.test_case "checkers agree on protocol runs" `Quick
            test_rdt_checkers_agree_on_protocol_runs;
          Alcotest.test_case "baseline violates RDT" `Quick test_none_violates_rdt;
          Alcotest.test_case "online TDV faithful" `Quick test_online_tdv_consistent;
          Alcotest.test_case "no useless checkpoints" `Quick test_no_useless_checkpoints_under_rdt;
          Alcotest.test_case "bcs: useful but not RDT" `Quick test_bcs_no_useless_but_not_rdt;
          Alcotest.test_case "predicate hierarchy" `Quick test_hierarchy_no_violations;
          Alcotest.test_case "conservativeness ordering" `Quick test_conservativeness_ordering;
          Alcotest.test_case "strict Definition 3.3 gap" `Quick test_strict_definition_gap;
          Alcotest.test_case "Lemma 4.1" `Quick test_lemma_41;
          Alcotest.test_case "Lemma 4.2" `Quick test_lemma_42;
          Alcotest.test_case "Lemma 4.3" `Quick test_lemma_43;
          qt checkers_agree_on_random_patterns;
        ] );
      ( "min-gcp",
        [
          Alcotest.test_case "Corollary 4.5 per protocol" `Quick test_corollary_45;
          Alcotest.test_case "Corollary needs RDT" `Quick test_corollary_45_fails_without_rdt;
          Alcotest.test_case "of_tdv = brute force" `Quick test_min_gcp_of_tdv_matches_brute;
          Alcotest.test_case "max GCP exists" `Quick test_max_gcp_exists_under_rdt;
          Alcotest.test_case "Wang's direct calculations" `Slow test_wang_direct_calculations;
          qt corollary_iff_checkable;
        ] );
    ]
