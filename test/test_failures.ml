(* Tests for rdt_failures: online crashes, rollback, protocol-state
   restoration, and message replay. *)

module CS = Rdt_failures.Crash_sim
module P = Rdt_pattern.Pattern
module Checker = Rdt_core.Checker
module Consistency = Rdt_pattern.Consistency

let check = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let config ?(n = 5) ?(seed = 7) ?(messages = 800) ?(envname = "random") ?(crashes = [])
    ?(faults = Rdt_dist.Faults.none) ?transport pname =
  let p = Rdt_core.Registry.find_exn pname in
  let env = Rdt_workloads.Registry.find_exn envname in
  {
    (CS.default_config env p) with
    CS.n;
    seed;
    max_messages = messages;
    crashes;
    faults;
    transport;
  }

let one_crash = [ { CS.victim = 2; at = 2500; repair_delay = 200 } ]

let three_crashes =
  [
    { CS.victim = 2; at = 2000; repair_delay = 200 };
    { CS.victim = 0; at = 4500; repair_delay = 300 };
    { CS.victim = 2; at = 7000; repair_delay = 150 };
  ]

let test_no_crash_baseline () =
  (* without crashes the simulation must behave like a normal run *)
  let r = CS.run (config "bhmr") in
  Alcotest.(check int) "no recoveries" 0 (List.length r.recoveries);
  Alcotest.(check int) "budget delivered" 800 r.metrics.CS.messages_delivered;
  Alcotest.(check int) "nothing undone" 0 r.metrics.CS.total_events_undone;
  check "valid" true (Result.is_ok (P.validate r.pattern));
  check "rdt" true (Checker.run r.pattern).Checker.rdt

let test_rdt_survives_crashes () =
  (* the surviving execution of an RDT protocol must satisfy RDT, with
     the on-line vectors still faithful after state restorations *)
  List.iter
    (fun pname ->
      List.iter
        (fun envname ->
          let r = CS.run (config ~envname ~crashes:three_crashes pname) in
          Alcotest.(check int) (pname ^ " three recoveries") 3 (List.length r.recoveries);
          if not (Checker.run r.pattern).Checker.rdt then
            Alcotest.failf "%s on %s: RDT violated after recovery" pname envname;
          check (pname ^ " online tdv") true (Checker.online_tdv_consistent r.pattern);
          check (pname ^ " valid") true (Result.is_ok (P.validate r.pattern)))
        [ "random"; "client-server" ])
    [ "bhmr"; "bhmr-v1"; "fdas"; "cbr"; "cas" ]

let test_recovery_lines_consistent () =
  let r = CS.run (config ~crashes:three_crashes "bhmr") in
  (* each recorded recovery line must be a consistent global checkpoint of
     the *surviving* pattern whenever its checkpoints survived; at minimum
     the victim's entry never exceeds its last durable checkpoint *)
  List.iter
    (fun (rc : CS.recovery) ->
      check "line entries nonnegative" true (Array.for_all (fun x -> x >= 0) rc.CS.line))
    r.recoveries;
  check "lines are monotone across recoveries" true
    (let rec mono = function
       | (a : CS.recovery) :: (b : CS.recovery) :: rest ->
           Array.for_all2 ( <= ) a.CS.line b.CS.line && mono (b :: rest)
       | [ _ ] | [] -> true
     in
     mono r.recoveries)

let test_domino_under_none () =
  let surgical = CS.run (config ~messages:1200 ~crashes:three_crashes "bhmr") in
  let domino = CS.run (config ~messages:1200 ~crashes:three_crashes "none") in
  check "none undoes far more work" true
    (domino.metrics.CS.total_events_undone > 10 * surgical.metrics.CS.total_events_undone);
  (* both executions remain structurally valid *)
  check "none still valid" true (Result.is_ok (P.validate domino.pattern))

let test_replay_accounting () =
  let r = CS.run (config ~crashes:one_crash "bhmr") in
  let rc = List.hd r.recoveries in
  check "replays bounded by undone deliveries" true
    (rc.CS.messages_replayed <= rc.CS.events_undone);
  (* every message in the final pattern is delivered exactly once *)
  Alcotest.(check int) "pattern messages = delivered" r.metrics.CS.messages_delivered
    (P.num_messages r.pattern)

let test_deterministic () =
  let a = CS.run (config ~crashes:three_crashes "bhmr") in
  let b = CS.run (config ~crashes:three_crashes "bhmr") in
  check "same recoveries" true
    (List.map (fun (rc : CS.recovery) -> rc.CS.line) a.recoveries
    = List.map (fun (rc : CS.recovery) -> rc.CS.line) b.recoveries);
  Alcotest.(check int) "same undone" a.metrics.CS.total_events_undone
    b.metrics.CS.total_events_undone

let test_crash_while_idle_process () =
  (* crashing a process that has no volatile state loses nothing of its own *)
  let crashes = [ { CS.victim = 1; at = 1; repair_delay = 50 } ] in
  let r = CS.run (config ~crashes "bhmr") in
  check "recovered" true (List.length r.recoveries = 1);
  check "rdt" true (Checker.run r.pattern).Checker.rdt

let test_validation () =
  Alcotest.check_raises "bad victim" (Invalid_argument "Crash_sim: victim out of range")
    (fun () ->
      ignore (CS.run (config ~crashes:[ { CS.victim = 9; at = 10; repair_delay = 10 } ] "bhmr")));
  Alcotest.check_raises "overlapping crashes"
    (Invalid_argument "Crash_sim: overlapping crashes of the same process") (fun () ->
      ignore
        (CS.run
           (config
              ~crashes:
                [
                  { CS.victim = 1; at = 100; repair_delay = 500 };
                  { CS.victim = 1; at = 200; repair_delay = 100 };
                ]
              "bhmr")));
  Alcotest.check_raises "zero repair" (Invalid_argument "Crash_sim: repair_delay must be >= 1")
    (fun () ->
      ignore (CS.run (config ~crashes:[ { CS.victim = 1; at = 100; repair_delay = 0 } ] "bhmr")))

(* -------------------- crashes composed with network faults ------------- *)

let lossy =
  {
    Rdt_dist.Faults.drop = 0.1;
    dup = 0.05;
    reorder = 0.05;
    reorder_window = 40;
    partitions = [ { Rdt_dist.Faults.between = [ 2 ]; from_t = 2000; to_t = 4500 } ];
    intermittent = [];
  }

let faulty_config ?transport ?(crashes = three_crashes) ?(envname = "random") pname =
  let transport = Option.value transport ~default:Rdt_dist.Transport.default_params in
  config ~envname ~crashes ~faults:lossy ~transport pname

let test_rdt_survives_crashes_under_faults () =
  (* the strongest end-to-end property: crashes, rollbacks and replays on
     top of a network that loses, duplicates, reorders and partitions —
     and the surviving pattern still satisfies RDT *)
  List.iter
    (fun pname ->
      List.iter
        (fun envname ->
          let r = CS.run (faulty_config ~envname pname) in
          Alcotest.(check int) (pname ^ " three recoveries") 3 (List.length r.recoveries);
          if not (Checker.run r.pattern).Checker.rdt then
            Alcotest.failf "%s on %s: RDT violated under crashes + faults" pname envname;
          check (pname ^ " valid") true (Result.is_ok (P.validate r.pattern));
          check (pname ^ " retransmitted") true (r.metrics.CS.retransmissions > 0);
          Alcotest.(check int)
            (pname ^ " pattern messages = delivered")
            r.metrics.CS.messages_delivered (P.num_messages r.pattern))
        [ "random"; "client-server" ])
    [ "bhmr"; "fdas" ]

let test_deterministic_under_faults () =
  let a = CS.run (faulty_config "bhmr") in
  let b = CS.run (faulty_config "bhmr") in
  check "same pattern" true (Rdt_pattern.Pattern.equal a.pattern b.pattern);
  check "same metrics (incl. retransmission counts)" true (a.metrics = b.metrics);
  check "same recoveries" true (a.recoveries = b.recoveries)

let test_undeliverable_under_faults () =
  (* a dead network with a tiny retry budget: every message is abandoned,
     the run still terminates and the pattern is empty of messages *)
  let r =
    CS.run
      (config ~messages:100
         ~faults:{ Rdt_dist.Faults.none with drop = 1.0 }
         ~transport:{ Rdt_dist.Transport.default_params with max_retx = 2 }
         "bhmr")
  in
  check "messages were sent" true (r.metrics.CS.undeliverable > 0);
  Alcotest.(check int) "nothing delivered" 0 r.metrics.CS.messages_delivered;
  Alcotest.(check int) "pattern empty of messages" 0 (P.num_messages r.pattern);
  check "still a valid pattern" true (Result.is_ok (P.validate r.pattern))

let test_transport_without_faults_matches_reliability () =
  (* a perfect network under the transport: nothing dropped, nothing
     abandoned, every message delivered despite the crash plan *)
  let r =
    CS.run (config ~crashes:three_crashes ~transport:Rdt_dist.Transport.default_params "bhmr")
  in
  (* packets_dropped still counts copies lost at crashed hosts, but with a
     perfect network nothing may be abandoned *)
  Alcotest.(check int) "no undeliverable" 0 r.metrics.CS.undeliverable;
  check "rdt" true (Checker.run r.pattern).Checker.rdt;
  Alcotest.(check int) "pattern messages = delivered" r.metrics.CS.messages_delivered
    (P.num_messages r.pattern)

let crash_rdt_property =
  QCheck.Test.make ~name:"RDT survives random crash plans" ~count:25
    QCheck.(triple (int_bound 4) (int_bound 3) small_nat)
    (fun (victim, n_crashes, seed) ->
      let crashes =
        List.init (1 + n_crashes) (fun k ->
            { CS.victim = victim mod 4; at = 1500 * (k + 1); repair_delay = 100 + (37 * k) })
      in
      let r = CS.run (config ~n:4 ~seed:(seed + 1) ~messages:400 ~crashes "bhmr") in
      (Checker.run r.pattern).Checker.rdt
      && Checker.online_tdv_consistent r.pattern
      && Result.is_ok (P.validate r.pattern))

let crash_consistency_property =
  QCheck.Test.make ~name:"surviving pattern has no useless checkpoints (bhmr)" ~count:15
    QCheck.(pair (int_bound 4) small_nat)
    (fun (victim, seed) ->
      let crashes = [ { CS.victim = victim mod 4; at = 2000; repair_delay = 150 } ] in
      let r = CS.run (config ~n:4 ~seed:(seed + 1) ~messages:300 ~crashes "bhmr") in
      let ok = ref true in
      P.iter_ckpts r.pattern (fun c ->
          if
            Consistency.useless r.pattern
              (c.Rdt_pattern.Types.owner, c.Rdt_pattern.Types.index)
          then ok := false);
      !ok)

let () =
  Alcotest.run "rdt_failures"
    [
      ( "crash-sim",
        [
          Alcotest.test_case "no crashes = plain run" `Quick test_no_crash_baseline;
          Alcotest.test_case "RDT survives crashes" `Quick test_rdt_survives_crashes;
          Alcotest.test_case "recovery lines monotone" `Quick test_recovery_lines_consistent;
          Alcotest.test_case "domino under none" `Quick test_domino_under_none;
          Alcotest.test_case "replay accounting" `Quick test_replay_accounting;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "early crash" `Quick test_crash_while_idle_process;
          Alcotest.test_case "validation" `Quick test_validation;
          qt crash_rdt_property;
          qt crash_consistency_property;
        ] );
      ( "crash+faults",
        [
          Alcotest.test_case "RDT survives crashes under faults" `Quick
            test_rdt_survives_crashes_under_faults;
          Alcotest.test_case "deterministic" `Quick test_deterministic_under_faults;
          Alcotest.test_case "graceful degradation" `Quick test_undeliverable_under_faults;
          Alcotest.test_case "perfect network, crashes only" `Quick
            test_transport_without_faults_matches_reliability;
        ] );
    ]
