(* Tests for rdt_obs: the JSONL trace codec, the recorder sinks, the
   metrics registry, and — the heart of it — trace replay: rebuilding the
   pattern from the recorded events and checking that the offline RDT
   verdicts of the rebuilt pattern equal the live run's. *)

module Trace = Rdt_obs.Trace
module Replay = Rdt_obs.Replay
module Meter = Rdt_obs.Meter
module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Checker = Rdt_core.Checker
module Runtime = Rdt_core.Runtime
module CS = Rdt_failures.Crash_sim

let check = Alcotest.(check bool)

(* -------------------------- codec ----------------------------------- *)

let sample_events =
  [
    Trace.Meta { n = 4; protocol = "bhmr"; env = "random"; seed = 7; mode = "verify" };
    Trace.Send { msg = 12; src = 0; dst = 3; time = 101 };
    Trace.Deliver { msg = 12; src = 0; dst = 3; time = 140 };
    Trace.Internal { pid = 2; time = 55 };
    Trace.Ckpt { pid = 1; index = 0; kind = T.Initial; time = 0; tdv = None; preds = [] };
    Trace.Ckpt
      {
        pid = 1;
        index = 3;
        kind = T.Forced;
        time = 222;
        tdv = Some [| 1; 3; 0; 2 |];
        preds = [ "c1"; "c2" ];
      };
    Trace.Ckpt { pid = 0; index = 2; kind = T.Basic; time = 180; tdv = Some [| 2; 0; 0; 0 |]; preds = [] };
    Trace.Retransmit { src = 1; dst = 2; seq = 9; attempt = 2; time = 300 };
    Trace.Drop { src = 2; dst = 1; time = 310 };
    Trace.Undeliverable { msg = 9; src = 1; dst = 2; time = 400 };
    Trace.Rollback { pid = 3; to_index = 1; time = 500 };
    Trace.Replay { msg = 4; src = 0; dst = 3; time = 510 };
    Trace.Verdict { checker = "rgraph_tdv"; rdt = true };
    Trace.Verdict { checker = "doubling"; rdt = false };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun ev ->
      let line = Trace.encode ev in
      match Trace.decode line with
      | Ok ev' -> if ev <> ev' then Alcotest.failf "round-trip changed %s" line
      | Error e -> Alcotest.failf "cannot decode %s: %s" line e)
    sample_events

let test_codec_rejects_garbage () =
  List.iter
    (fun line -> check line true (Result.is_error (Trace.decode line)))
    [
      "";
      "not json";
      "{}";
      "{\"ev\":\"unknown\"}";
      "{\"ev\":\"send\",\"msg\":1}";
      "{\"ev\":\"ckpt\",\"pid\":0,\"index\":1,\"kind\":\"bogus\",\"t\":3}";
    ]

let test_file_roundtrip () =
  let file = Filename.temp_file "rdt_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          let tr = Trace.to_channel oc in
          List.iter (Trace.emit tr) sample_events);
      match Trace.read_file file with
      | Ok evs -> check "file round-trip" true (evs = sample_events)
      | Error e -> Alcotest.fail e)

(* -------------------------- sinks ----------------------------------- *)

let test_null_sink () =
  check "off" false (Trace.on Trace.null);
  Trace.emit Trace.null (Trace.Internal { pid = 0; time = 0 });
  Alcotest.(check int) "no events counted" 0 (Trace.count Trace.null);
  check "no events kept" true (Trace.events Trace.null = [])

let test_ring_sink () =
  let tr = Trace.ring ~capacity:4 in
  check "on" true (Trace.on tr);
  for i = 1 to 10 do
    Trace.emit tr (Trace.Internal { pid = i; time = i })
  done;
  Alcotest.(check int) "all emissions counted" 10 (Trace.count tr);
  check "keeps the most recent, oldest first" true
    (Trace.events tr
    = List.map (fun i -> Trace.Internal { pid = i; time = i }) [ 7; 8; 9; 10 ]);
  Alcotest.check_raises "capacity validated"
    (Invalid_argument "Trace.ring: capacity must be positive")
    (fun () -> ignore (Trace.ring ~capacity:0))

(* -------------------------- meter ----------------------------------- *)

let test_meter () =
  let m = Meter.create () in
  Meter.incr m "a";
  Meter.add m "a" 4;
  Meter.incr m "b";
  Meter.set_gauge m "depth" 17;
  Meter.add_span m "phase" 0.5;
  Meter.add_span m "phase" 0.25;
  let x = Meter.time m "timed" (fun () -> 42) in
  Alcotest.(check int) "time returns the result" 42 x;
  check "counters sorted with gauges" true
    (Meter.counters m = [ ("a", 5); ("b", 1); ("gauge:depth", 17) ]);
  (match Meter.spans m with
  | [ ("phase", s); ("timed", t) ] ->
      Alcotest.(check int) "phase calls" 2 s.Meter.calls;
      check "phase seconds" true (abs_float (s.Meter.seconds -. 0.75) < 1e-9);
      Alcotest.(check int) "timed calls" 1 t.Meter.calls
  | _ -> Alcotest.fail "unexpected span set");
  Meter.reset m;
  check "reset" true (Meter.counters m = [] && Meter.spans m = [])

(* -------------------------- replay ---------------------------------- *)

let runtime_config ?(n = 5) ?(messages = 150) ?(faults = Rdt_dist.Faults.none) ?transport
    ~envname ~seed ~trace protocol =
  let env = Rdt_workloads.Registry.find_exn envname in
  {
    (Runtime.default_config env protocol) with
    Runtime.n;
    seed;
    max_messages = messages;
    faults;
    transport;
    trace;
  }

let three_verdicts pat =
  ( (Checker.run pat).Checker.rdt,
    (Checker.run ~algo:`Chains pat).Checker.rdt,
    (Checker.run ~algo:`Doubling pat).Checker.rdt )

(* The acceptance matrix: every registry protocol on three environments
   and three seeds.  The trace must rebuild to the *same* pattern the
   live run produced, hence (a fortiori) the same three RDT verdicts. *)
let test_replay_matrix () =
  List.iter
    (fun protocol ->
      let pname = Rdt_core.Protocol.name protocol in
      List.iter
        (fun envname ->
          List.iter
            (fun seed ->
              let tr = Trace.ring ~capacity:100_000 in
              let r = Runtime.run (runtime_config ~envname ~seed ~trace:tr protocol) in
              match Replay.rebuild (Trace.events tr) with
              | Error e ->
                  Alcotest.failf "%s/%s seed %d: rebuild failed: %s" pname envname seed e
              | Ok rebuilt ->
                  if not (Rdt_pattern.Pattern.equal rebuilt r.Runtime.pattern) then
                    Alcotest.failf "%s/%s seed %d: rebuilt pattern differs" pname envname seed;
                  if three_verdicts rebuilt <> three_verdicts r.Runtime.pattern then
                    Alcotest.failf "%s/%s seed %d: verdicts differ" pname envname seed)
            [ 1; 2; 3 ])
        [ "random"; "group"; "client-server" ])
    Rdt_core.Registry.all

(* Same property for the faulty path of the runtime: drops, duplicates,
   reordering and a partition over the reliable transport. *)
let test_replay_under_faults () =
  let faults =
    {
      Rdt_dist.Faults.drop = 0.15;
      dup = 0.05;
      reorder = 0.05;
      reorder_window = 40;
      partitions = [ { Rdt_dist.Faults.between = [ 1 ]; from_t = 1000; to_t = 2500 } ];
      intermittent = [];
    }
  in
  List.iter
    (fun seed ->
      let tr = Trace.ring ~capacity:200_000 in
      let cfg =
        runtime_config ~envname:"random" ~seed ~trace:tr ~faults
          ~transport:Rdt_dist.Transport.default_params
          (Rdt_core.Registry.find_exn "bhmr")
      in
      let r = Runtime.run cfg in
      match Replay.rebuild (Trace.events tr) with
      | Error e -> Alcotest.failf "seed %d: rebuild failed: %s" seed e
      | Ok rebuilt ->
          check "pattern equal under faults" true (P.equal rebuilt r.Runtime.pattern);
          (* the transport leaves its footprint in the trace *)
          check "trace has drops" true
            (List.exists (function Trace.Drop _ -> true | _ -> false) (Trace.events tr)))
    [ 1; 2; 3 ]

(* Crash-and-recovery traces: rollbacks truncate the per-process stacks,
   replays re-enter as fresh deliveries, and the rebuilt pattern must be
   the surviving execution. *)
let test_replay_crashrun () =
  let crashes =
    [
      { CS.victim = 2; at = 2000; repair_delay = 200 };
      { CS.victim = 0; at = 4500; repair_delay = 300 };
    ]
  in
  List.iter
    (fun (pname, faults, transport) ->
      List.iter
        (fun seed ->
          let tr = Trace.ring ~capacity:200_000 in
          let p = Rdt_core.Registry.find_exn pname in
          let env = Rdt_workloads.Registry.find_exn "random" in
          let r =
            CS.run
              {
                (CS.default_config env p) with
                CS.n = 5;
                seed;
                max_messages = 300;
                crashes;
                faults;
                transport;
                trace = tr;
              }
          in
          match Replay.rebuild (Trace.events tr) with
          | Error e -> Alcotest.failf "%s seed %d: rebuild failed: %s" pname seed e
          | Ok rebuilt ->
              if not (Rdt_pattern.Pattern.equal rebuilt r.CS.pattern) then
                Alcotest.failf "%s seed %d: rebuilt surviving pattern differs" pname seed;
              check "rollbacks recorded" true
                (List.exists (function Trace.Rollback _ -> true | _ -> false) (Trace.events tr)))
        [ 1; 2; 3 ])
    [
      ("bhmr", Rdt_dist.Faults.none, None);
      ("fdas", { Rdt_dist.Faults.none with drop = 0.15 }, Some Rdt_dist.Transport.default_params);
    ]

let test_replay_errors () =
  (* structurally impossible traces are rejected, not mis-rebuilt *)
  let bad =
    [
      ( "unknown delivery",
        [ Trace.Deliver { msg = 3; src = 0; dst = 1; time = 5 } ] );
      ( "undeliverable delivered",
        [
          Trace.Send { msg = 3; src = 0; dst = 1; time = 1 };
          Trace.Undeliverable { msg = 3; src = 0; dst = 1; time = 2 };
          Trace.Deliver { msg = 3; src = 0; dst = 1; time = 5 };
        ] );
      ( "rollback to missing checkpoint",
        [
          Trace.Internal { pid = 0; time = 1 };
          Trace.Rollback { pid = 0; to_index = 2; time = 3 };
        ] );
      ("empty", []);
    ]
  in
  List.iter (fun (name, evs) -> check name true (Result.is_error (Replay.rebuild evs))) bad

let test_summary () =
  let tr = Trace.ring ~capacity:100_000 in
  let r =
    Runtime.run
      (runtime_config ~envname:"random" ~seed:1 ~trace:tr (Rdt_core.Registry.find_exn "bhmr"))
  in
  let s = Replay.summarize (Trace.events tr) in
  Alcotest.(check int) "sends = budget" 150 (List.assoc "send" s.Replay.by_kind);
  Alcotest.(check int) "delivers = messages" (P.num_messages r.Runtime.pattern)
    (List.assoc "deliver" s.Replay.by_kind);
  check "forced grouped by predicates" true (s.Replay.forced_by_pred <> []);
  Alcotest.(check int) "n inferred" 5 s.Replay.n

(* The trace must not perturb the run: same seed with and without a
   recorder yields the identical pattern. *)
let test_tracing_is_observation_only () =
  List.iter
    (fun pname ->
      let p = Rdt_core.Registry.find_exn pname in
      let quiet = Runtime.run (runtime_config ~envname:"group" ~seed:4 ~trace:Trace.null p) in
      let traced =
        Runtime.run (runtime_config ~envname:"group" ~seed:4 ~trace:(Trace.ring ~capacity:65536) p)
      in
      check (pname ^ " same pattern") true
        (P.equal quiet.Runtime.pattern traced.Runtime.pattern))
    [ "bhmr"; "fdas"; "none" ]

let () =
  Alcotest.run "rdt_obs"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "ring" `Quick test_ring_sink;
        ] );
      ("meter", [ Alcotest.test_case "registry" `Quick test_meter ]);
      ( "replay",
        [
          Alcotest.test_case "protocol x env x seed matrix" `Slow test_replay_matrix;
          Alcotest.test_case "under network faults" `Quick test_replay_under_faults;
          Alcotest.test_case "crash and recovery" `Quick test_replay_crashrun;
          Alcotest.test_case "impossible traces rejected" `Quick test_replay_errors;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "observation only" `Quick test_tracing_is_observation_only;
        ] );
    ]
