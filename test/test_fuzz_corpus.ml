(* Regression corpus for the fuzzer's executor.

   Each [corpus/*.json] file is a committed {!Rdt_fuzz.Scenario}
   distilled from a historical bug class of this repository — partition
   windows exhausting the retransmission budget, duplicate/stale-ACK
   races in the transport, draining in-flight traffic at the message
   budget, rollback cascades retracting dependencies, violation ordering
   under a non-RDT protocol, and flapping mobile-host links.  Every
   entry must replay through the fully cross-checked executor and pass;
   any failure is a regression in the simulator, a checker, or the
   trace/replay machinery.

   Shrunk counterexamples from future fuzz campaigns belong here: drop
   the [.json] the fuzzer wrote into [corpus/] and this suite picks it
   up by name. *)

module Scenario = Rdt_fuzz.Scenario
module Exec = Rdt_fuzz.Exec

let corpus_dir = "corpus"

let entries =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare

let replay file () =
  let path = Filename.concat corpus_dir file in
  match Scenario.of_file path with
  | Error e -> Alcotest.failf "%s: decode failed: %s" file e
  | Ok sc -> (
      (match Scenario.validate sc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid scenario: %s" file e);
      match Exec.classify sc with
      | Exec.Pass -> ()
      | Exec.Fail { kind; detail } ->
          Alcotest.failf "%s: regression (%s): %s" file (Exec.kind_name kind) detail)

let () =
  if List.length entries < 6 then
    failwith (Printf.sprintf "corpus has %d entries, expected at least 6" (List.length entries));
  Alcotest.run "rdt_fuzz_corpus"
    [ ("corpus", List.map (fun f -> Alcotest.test_case f `Quick (replay f)) entries) ]
