(* Second-pass tests: edge cases, error paths, and pretty-printers across
   all libraries, plus runtime-level property tests that drive random
   configurations end to end. *)

module Rng = Rdt_dist.Rng
module Vclock = Rdt_dist.Vclock
module Channel = Rdt_dist.Channel
module Heap = Rdt_dist.Heap
module Event_queue = Rdt_dist.Event_queue
module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Chains = Rdt_pattern.Chains
module Rgraph = Rdt_pattern.Rgraph
module Tdv = Rdt_pattern.Tdv
module Render = Rdt_pattern.Render
module Consistency = Rdt_pattern.Consistency
module Control = Rdt_core.Control
module Runtime = Rdt_core.Runtime
module Checker = Rdt_core.Checker
module Metrics = Rdt_core.Metrics
module Registry = Rdt_core.Registry

let check = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

let fmt_str f x = Format.asprintf "%a" f x

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

(* ------------------------------------------------------------------ *)
(* rdt_dist edges                                                      *)
(* ------------------------------------------------------------------ *)

let test_vclock_edges () =
  let a = [| 1; 2 |] in
  let v = Vclock.of_array a in
  a.(0) <- 99;
  Alcotest.(check int) "of_array copies" 1 (Vclock.get v 0);
  let out = Vclock.to_array v in
  out.(1) <- 99;
  Alcotest.(check int) "to_array copies" 2 (Vclock.get v 1);
  Alcotest.check_raises "negative entry" (Invalid_argument "Vclock.set: negative entry")
    (fun () -> Vclock.set v 0 (-1));
  Alcotest.check_raises "merge size mismatch" (Invalid_argument "Vclock.merge: size mismatch")
    (fun () -> Vclock.merge v (Vclock.create ~n:3));
  check "pp" true (contains (fmt_str Vclock.pp v) "[1;2]");
  Alcotest.check_raises "create 0" (Invalid_argument "Vclock.create: n must be positive")
    (fun () -> ignore (Vclock.create ~n:0))

let test_rng_error_paths () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int_in reversed" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in rng 3 2));
  Alcotest.check_raises "exponential mean 0"
    (Invalid_argument "Rng.exponential_int: mean must be positive") (fun () ->
      ignore (Rng.exponential_int rng ~mean:0));
  Alcotest.check_raises "geometric p=0" (Invalid_argument "Rng.geometric: p out of (0,1]")
    (fun () -> ignore (Rng.geometric rng 0.0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_channel_pp () =
  check "fixed" true (contains (fmt_str Channel.pp (Channel.Fixed 3)) "fixed(3)");
  check "uniform" true (contains (fmt_str Channel.pp (Channel.Uniform (1, 9))) "uniform(1,9)");
  check "bimodal" true
    (contains
       (fmt_str Channel.pp (Channel.Bimodal { fast = 1; slow = 9; slow_prob = 0.25 }))
       "bimodal")

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.add h) [ 5; 1; 9; 3 ];
  Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h);
  Alcotest.(check int) "to_list size" 3 (List.length (Heap.to_list h))

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:10 "a";
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a")) (Event_queue.pop q);
  Event_queue.schedule q ~time:5 "late-but-early";
  Event_queue.schedule q ~time:20 "b";
  (* times in the past of previously popped events are still served in
     order: the queue imposes no monotonicity *)
  Alcotest.(check (option (pair int string))) "pop early" (Some (5, "late-but-early"))
    (Event_queue.pop q);
  check "not empty" true (not (Event_queue.is_empty q))

(* ------------------------------------------------------------------ *)
(* rdt_pattern edges                                                   *)
(* ------------------------------------------------------------------ *)

let test_pattern_accessor_errors () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let pat = fx.pattern in
  Alcotest.check_raises "missing checkpoint"
    (Invalid_argument "Pattern.ckpt: C(0,99) does not exist") (fun () ->
      ignore (P.ckpt pat (0, 99)));
  check "has_ckpt negative" false (P.has_ckpt pat (-1, 0));
  Alcotest.check_raises "interval past the end"
    (Invalid_argument "Pattern.interval_of_pos: event after final checkpoint") (fun () ->
      ignore (P.interval_of_pos pat 0 ~pos:10_000))

let test_fig1_recvs_and_sends () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let pat = fx.pattern in
  Alcotest.(check (array int)) "P_i sends m1, m5" [| fx.m1; fx.m5 |] (P.sends_of pat fx.i);
  Alcotest.(check (array int)) "P_i receives m2" [| fx.m2 |] (P.recvs_of pat fx.i);
  Alcotest.(check (array int)) "P_k receives m4, m6" [| fx.m4; fx.m6 |] (P.recvs_of pat fx.k);
  (* sends_between: P_j's sends strictly inside I_{j,2} *)
  let cks = P.checkpoints pat fx.j in
  let lo = cks.(1).T.pos and hi = cks.(2).T.pos in
  Alcotest.(check (list int)) "I_{j,2} sends m4, m6" [ fx.m4; fx.m6 ]
    (P.sends_between pat fx.j ~lo ~hi)

let test_fig1_tdv_final () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let tdv = Tdv.compute fx.pattern in
  (* after its last event, P_j has seen everything up to m7's causal past *)
  let final_j = Tdv.final tdv fx.j in
  Alcotest.(check int) "own entry = current interval" 4 final_j.(fx.j);
  check "depends on P_i's third interval" true (final_j.(fx.i) >= 3)

let test_rgraph_edge_count_fig1 () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let g = Rgraph.build fx.pattern in
  (* 3 program edges per process + 6 distinct message edges (m4 and m6
     both give C(1,2) -> C(2,2)... m3/m5 in paper naming) *)
  Alcotest.(check int) "edge count" (9 + 6) (Rgraph.edge_count g);
  Alcotest.(check int) "num nodes" 12 (Rgraph.num_nodes g)

let test_chains_from_interval_zero () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  let r = Chains.causal_from_interval fx.pattern (fx.i, 0) in
  check "I(i,0) reaches nothing" true (Array.for_all (( = ) max_int) r.Chains.earliest);
  Alcotest.check_raises "missing source" (Invalid_argument "Chains: C(9,0) does not exist")
    (fun () -> ignore (Chains.causal_from_interval fx.pattern (9, 0)))

let test_consistency_arg_errors () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  Alcotest.check_raises "two pins on one process"
    (Invalid_argument "Consistency: two checkpoints of the same process in the set") (fun () ->
      ignore (Consistency.min_consistent_containing fx.pattern [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "bad vector length"
    (Invalid_argument "Consistency: vector length mismatch") (fun () ->
      ignore (Consistency.consistent_global fx.pattern [| 0 |]))

let test_render_alignment () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  match Render.ascii fx.pattern with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let lines = String.split_on_char '\n' s in
      let grid = List.filteri (fun k _ -> k < 3) lines in
      (match grid with
      | first :: rest ->
          List.iter
            (fun l -> Alcotest.(check int) "grid rows aligned" (String.length first) (String.length l))
            rest
      | [] -> Alcotest.fail "no grid")

let test_pp_functions () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  check "ckpt id" true (contains (fmt_str T.pp_ckpt_id (1, 2)) "C(1,2)");
  check "message" true (contains (fmt_str T.pp_message (P.message fx.pattern fx.m5)) "->");
  check "kind" true (T.ckpt_kind_to_string T.Forced = "forced");
  check "summary" true (contains (fmt_str P.pp_summary fx.pattern) "3 processes")

(* ------------------------------------------------------------------ *)
(* rdt_core edges                                                      *)
(* ------------------------------------------------------------------ *)

let env name = Rdt_workloads.Registry.find_exn name

let test_checker_report_output () =
  let none = Registry.find_exn "none" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (env "client-server") none) with
        Runtime.n = 5;
        seed = 4;
        max_messages = 500;
      }
  in
  let rep = Checker.run r.pattern in
  check "violations reported" true (List.length rep.Checker.violations > 0);
  check "capped" true (List.length rep.Checker.violations <= Checker.max_reported);
  check "pp mentions VIOLATED" true (contains (fmt_str Checker.pp_report rep) "VIOLATED");
  let ok_rep =
    Checker.run
      (Runtime.run
         {
           (Runtime.default_config (env "random") (Registry.find_exn "cbr")) with
           Runtime.n = 3;
           seed = 4;
           max_messages = 100;
         })
        .pattern
  in
  check "pp mentions holds" true (contains (fmt_str Checker.pp_report ok_rep) "RDT holds")

let test_metrics_helpers () =
  let bhmr = Registry.find_exn "bhmr" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (env "random") bhmr) with
        Runtime.n = 4;
        seed = 2;
        max_messages = 200;
      }
  in
  let m = r.metrics in
  Alcotest.(check int) "total = n + basic + forced"
    (4 + m.Metrics.basic + m.Metrics.forced)
    (Metrics.total_checkpoints m);
  check "forced/msg in [0,1]" true
    (Metrics.forced_per_message m >= 0.0 && Metrics.forced_per_message m <= 1.0);
  check "pp" true (contains (fmt_str Metrics.pp m) "bhmr/random");
  let zero_basic = { m with Metrics.basic = 0 } in
  check "forced_per_basic guards zero" true (Metrics.forced_per_basic zero_basic = 0.0)

let test_control_pp () =
  check "nothing" true (fmt_str Control.pp Control.Nothing = "-");
  check "tdv" true (contains (fmt_str Control.pp (Control.Tdv [| 1 |])) "tdv");
  check "full" true
    (contains
       (fmt_str Control.pp
          (Control.Full
             { tdv = [| 1 |]; simple = [| true |]; causal = [| [| true |] |] }))
       "simple")

let test_runtime_no_basic () =
  let bhmr = Registry.find_exn "bhmr" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (env "random") bhmr) with
        Runtime.n = 4;
        seed = 2;
        max_messages = 200;
        basic_period = (0, 0);
      }
  in
  Alcotest.(check int) "no basic checkpoints" 0 r.metrics.Metrics.basic;
  check "still RDT" true (Checker.run r.pattern).Checker.rdt

let test_runtime_max_time () =
  let bhmr = Registry.find_exn "bhmr" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (env "random") bhmr) with
        Runtime.n = 4;
        seed = 2;
        max_messages = 100_000;
        max_time = 2_000;
      }
  in
  check "cut short by time" true (r.metrics.Metrics.messages < 100_000);
  check "pattern valid" true (Result.is_ok (P.validate r.pattern))

let test_runtime_env_checkpoint_action () =
  (* an environment that requests a basic checkpoint after every send *)
  let module E = struct
    type t = { n : int; rng : Rng.t }

    let name = "ckpt-heavy"
    let create ~n ~rng = { n; rng }
    let initial_tick_delay t ~pid:_ = 1 + Rng.int t.rng 10

    let on_tick t ~pid =
      let dst = (pid + 1) mod t.n in
      {
        Rdt_dist.Env.actions = [ Rdt_dist.Env.Send dst; Rdt_dist.Env.Checkpoint ];
        next_tick_in = Some (1 + Rng.int t.rng 30);
      }

    let on_deliver = Rdt_dist.Env.no_reaction
  end in
  let bhmr = Registry.find_exn "bhmr" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (module E : Rdt_dist.Env.S) bhmr) with
        Runtime.n = 3;
        seed = 5;
        max_messages = 150;
        basic_period = (0, 0);
      }
  in
  check "env-driven checkpoints taken" true (r.metrics.Metrics.basic > 0);
  check "rdt" true (Checker.run r.pattern).Checker.rdt

let runtime_rdt_property =
  (* random (environment, protocol, seed, n) -> RDT holds *)
  QCheck.Test.make ~name:"random runtime configurations satisfy RDT" ~count:40
    QCheck.(quad (int_bound 6) (int_bound 6) small_nat (2 -- 5))
    (fun (ei, pi_, seed, n) ->
      let envs = Rdt_workloads.Registry.all in
      let _, _, mk = List.nth envs (ei mod List.length envs) in
      let protos = Registry.rdt_protocols in
      let protocol = List.nth protos (pi_ mod List.length protos) in
      let r =
        Runtime.run
          {
            (Runtime.default_config (mk ()) protocol) with
            Runtime.n;
            seed = seed + 1;
            max_messages = 120;
          }
      in
      (Checker.run r.pattern).Checker.rdt)

let runtime_bcs_no_useless_property =
  QCheck.Test.make ~name:"random bcs runs have no useless checkpoints" ~count:25
    QCheck.(pair (int_bound 6) small_nat)
    (fun (ei, seed) ->
      let envs = Rdt_workloads.Registry.all in
      let _, _, mk = List.nth envs (ei mod List.length envs) in
      let r =
        Runtime.run
          {
            (Runtime.default_config (mk ()) (Registry.find_exn "bcs")) with
            Runtime.n = 4;
            seed = seed + 1;
            max_messages = 120;
          }
      in
      let ok = ref true in
      P.iter_ckpts r.pattern (fun c ->
          if Consistency.useless r.pattern (c.T.owner, c.T.index) then ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* rdt_recovery edges                                                  *)
(* ------------------------------------------------------------------ *)

let test_replay_cost_no_crash () =
  let bhmr = Registry.find_exn "bhmr" in
  let r =
    Runtime.run
      {
        (Runtime.default_config (env "random") bhmr) with
        Runtime.n = 4;
        seed = 9;
        max_messages = 200;
      }
  in
  let cost = Rdt_recovery.Message_log.replay_cost r.pattern ~crash:[] in
  Alcotest.(check int) "nothing replayed" 0 cost.Rdt_recovery.Message_log.replayed_messages;
  Alcotest.(check int) "nothing redone" 0 cost.Rdt_recovery.Message_log.reexecuted_events

let test_bounded_line_validation () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  Alcotest.check_raises "bounds length"
    (Invalid_argument "Recovery_line: bounds length mismatch") (fun () ->
      ignore (Rdt_recovery.Recovery_line.max_consistent_bounded fx.pattern [| 0 |]))

let test_breakpoint_recomputed_path () =
  (* hand-built patterns record no TDV, so the breakpoint must be
     recomputed by fixpoint and flagged accordingly *)
  let pat = Rdt_test_helpers.Fixtures.causal_ping_pong () in
  match Rdt_recovery.Breakpoint.compute pat (0, 2) with
  | None -> Alcotest.fail "expected a breakpoint"
  | Some bp ->
      check "recomputed" false bp.Rdt_recovery.Breakpoint.on_the_fly;
      check "pp" true (contains (fmt_str Rdt_recovery.Breakpoint.pp bp) "recomputed")

(* ------------------------------------------------------------------ *)
(* rdt_harness / experiments edges                                     *)
(* ------------------------------------------------------------------ *)

let test_lost_work_shape () =
  let fig = Rdt_harness.Experiments.fig_lost_work ~seeds:[ 1; 2 ] () in
  let means label =
    match List.find_opt (fun s -> s.Rdt_harness.Experiments.label = label) fig.series with
    | None -> Alcotest.failf "series %s missing" label
    | Some s ->
        List.map (fun p -> Rdt_harness.Stats.mean p.Rdt_harness.Experiments.stats) s.points
  in
  let none = means "none" and bhmr = means "bhmr" in
  (* at sparse checkpointing, uncoordinated recovery loses far more *)
  (match (List.rev none, List.rev bhmr) with
  | n :: _, b :: _ -> check "none loses more at sparse periods" true (n > b +. 0.2)
  | _ -> Alcotest.fail "empty series");
  List.iter2 (fun n b -> check "none >= bhmr - eps" true (n >= b -. 0.05)) none bhmr

let test_recovery_table_rows () =
  let t = Rdt_harness.Experiments.table_recovery ~seeds:[ 1 ] () in
  let rendered = Rdt_harness.Table.render t in
  List.iter
    (fun p -> check (p ^ " row present") true (contains rendered p))
    [ "none"; "bcs"; "fdas"; "bhmr" ]

let test_breakeven_table () =
  let t = Rdt_harness.Experiments.table_breakeven ~seeds:[ 1 ] () in
  let rendered = Rdt_harness.Table.render t in
  check "has stencil row" true (contains rendered "stencil");
  check "stencil break-even infinite" true (contains rendered "inf")

let () =
  Alcotest.run "rdt_extra"
    [
      ( "dist-edges",
        [
          Alcotest.test_case "vclock" `Quick test_vclock_edges;
          Alcotest.test_case "rng errors" `Quick test_rng_error_paths;
          Alcotest.test_case "channel pp" `Quick test_channel_pp;
          Alcotest.test_case "heap custom order" `Quick test_heap_custom_order;
          Alcotest.test_case "queue interleaved" `Quick test_queue_interleaved;
        ] );
      ( "pattern-edges",
        [
          Alcotest.test_case "accessor errors" `Quick test_pattern_accessor_errors;
          Alcotest.test_case "fig1 sends/recvs" `Quick test_fig1_recvs_and_sends;
          Alcotest.test_case "fig1 final TDV" `Quick test_fig1_tdv_final;
          Alcotest.test_case "fig1 edge count" `Quick test_rgraph_edge_count_fig1;
          Alcotest.test_case "chains from I(i,0)" `Quick test_chains_from_interval_zero;
          Alcotest.test_case "consistency errors" `Quick test_consistency_arg_errors;
          Alcotest.test_case "render alignment" `Quick test_render_alignment;
          Alcotest.test_case "pretty printers" `Quick test_pp_functions;
        ] );
      ( "core-edges",
        [
          Alcotest.test_case "checker report" `Quick test_checker_report_output;
          Alcotest.test_case "metrics helpers" `Quick test_metrics_helpers;
          Alcotest.test_case "control pp" `Quick test_control_pp;
          Alcotest.test_case "no basic checkpoints" `Quick test_runtime_no_basic;
          Alcotest.test_case "max_time cutoff" `Quick test_runtime_max_time;
          Alcotest.test_case "env checkpoint action" `Quick test_runtime_env_checkpoint_action;
          qt runtime_rdt_property;
          qt runtime_bcs_no_useless_property;
        ] );
      ( "recovery-edges",
        [
          Alcotest.test_case "replay cost no crash" `Quick test_replay_cost_no_crash;
          Alcotest.test_case "bounded line validation" `Quick test_bounded_line_validation;
          Alcotest.test_case "breakpoint recomputed" `Quick test_breakpoint_recomputed_path;
        ] );
      ( "harness-edges",
        [
          Alcotest.test_case "lost-work shape" `Slow test_lost_work_shape;
          Alcotest.test_case "recovery table rows" `Quick test_recovery_table_rows;
          Alcotest.test_case "break-even table" `Quick test_breakeven_table;
        ] );
    ]
