(* R1 fixture: pool tasks that are safe — task-local mutation and
   Atomic accumulation are both fine. *)

let local_state xs =
  Rdt_harness.Pool.map ~jobs:2
    (fun x ->
      let acc = ref 0 in
      for i = 1 to x do
        acc := !acc + i
      done;
      !acc)
    xs

let atomic_sum xs =
  let total = Atomic.make 0 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> Atomic.fetch_and_add total x) xs in
  Atomic.get total

let local_queue xs =
  Rdt_harness.Pool.map ~jobs:2
    (fun x ->
      let q = Queue.create () in
      Queue.add x q;
      Queue.clear q;
      Queue.length q)
    xs

let read_only_chain xs =
  let counts = Hashtbl.create 8 in
  Hashtbl.replace counts 0 42;
  Rdt_harness.Pool.map ~jobs:2 (fun x -> Hashtbl.find counts (x mod 1)) xs
