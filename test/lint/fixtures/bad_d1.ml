(* D1 fixture: every determinism ban in one file. *)

let seed_ambiently () = Random.self_init ()
let draw () = Random.int 10
let stamp () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
