(* R1 fixture: closures handed to the domain pool that write state
   captured from the enclosing scope — data races under OCaml 5. *)

let racy_ref xs =
  let total = ref 0 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> total := !total + x) xs in
  !total

type acc = { mutable hits : int }

let racy_field xs =
  let a = { hits = 0 } in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun _ -> a.hits <- a.hits + 1) xs in
  a.hits

let racy_table xs =
  let seen = Hashtbl.create 8 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> Hashtbl.replace seen x true) xs in
  Hashtbl.length seen

let racy_spawn () =
  let cell = ref 0 in
  let d = Domain.spawn (fun () -> incr cell) in
  Domain.join d;
  !cell

let racy_queue xs =
  let q = Queue.create () in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> Queue.add x q) xs in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun _ -> Queue.clear q) xs in
  Queue.length q

let racy_stack xs =
  let st = Stack.create () in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun _ -> Stack.clear st) xs in
  Stack.length st

let racy_buffer xs =
  let b = Buffer.create 8 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun _ -> Buffer.reset b) xs in
  Buffer.length b

let racy_inplace xs =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let _ =
    Rdt_harness.Pool.map ~jobs:2
      (fun _ -> Hashtbl.filter_map_inplace (fun _ v -> Some (v + 1)) tbl)
      xs
  in
  Hashtbl.length tbl

let racy_getter_chain xs =
  let counts = Hashtbl.create 8 in
  Hashtbl.replace counts 0 (ref 0);
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> incr (Hashtbl.find counts (x mod 1))) xs in
  !(Hashtbl.find counts 0)
