(* R1 fixture: closures handed to the domain pool that write state
   captured from the enclosing scope — data races under OCaml 5. *)

let racy_ref xs =
  let total = ref 0 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> total := !total + x) xs in
  !total

type acc = { mutable hits : int }

let racy_field xs =
  let a = { hits = 0 } in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun _ -> a.hits <- a.hits + 1) xs in
  a.hits

let racy_table xs =
  let seen = Hashtbl.create 8 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> Hashtbl.replace seen x true) xs in
  Hashtbl.length seen

let racy_spawn () =
  let cell = ref 0 in
  let d = Domain.spawn (fun () -> incr cell) in
  Domain.join d;
  !cell
