(* D1 fixture: a would-be durable layer that reads ambient time and
   entropy.  The real lib/durable is sanctioned *line-precisely* in
   .rdtlint (one Unix.sleepf backoff site in io.ml); nothing here is,
   so every site below must be reported — including the sleeps, which
   the strict-parsed allowlist entry must not blanket-cover. *)

let jittered_backoff () = Unix.sleepf (Random.float 0.01)
let paced_retry seconds = Unix.sleep seconds
let stamp_wal_record () = Unix.gettimeofday ()
