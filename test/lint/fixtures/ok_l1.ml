(* L1 fixture: every legitimate fate of an acquired descriptor —
   released under Fun.protect, released by a summarized helper, stored
   in a record, returned to the caller. *)

let protected path =
  let fd = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Rdt_durable.Io.close_noerr fd)
    (fun () -> ignore (Rdt_durable.Io.recv fd (Bytes.create 8) 0 8))

let release fd = Rdt_durable.Io.close_noerr fd

let helper_released path =
  let fd = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0 in
  let n = Rdt_durable.Io.recv fd (Bytes.create 8) 0 8 in
  release fd;
  n

type handle = { fd : Unix.file_descr; mutable reads : int }

let stored path =
  let fd = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0 in
  { fd; reads = 0 }

let returned path = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0
