(* S1 fixture: the same work as bad_s1.ml routed through Rdt_durable.Io,
   which carries the retry/fsync/rename discipline S1 exists to
   enforce. *)

let copy_file src dst =
  match Rdt_durable.Io.read_file ~name:"src" src with
  | None -> ()
  | Some data ->
      let fd =
        Rdt_durable.Io.openfile ~name:"dst" dst [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> Rdt_durable.Io.close_noerr fd)
        (fun () ->
          Rdt_durable.Io.write_all ~name:"dst" fd (Bytes.of_string data);
          Rdt_durable.Io.fsync ~name:"dst" fd);
      Rdt_durable.Io.rename ~src ~dst;
      Rdt_durable.Io.unlink_quiet src
