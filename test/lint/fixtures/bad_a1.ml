(* A1 fixture: call sites of the deprecated Checker.check* wrappers.
   The alert is silenced exactly the way drifting code would silence it
   — the lint must catch the use anyway, from the cmt attributes. *)

[@@@ocaml.alert "-deprecated"]

let verdict pat =
  let r = Rdt_core.Checker.check pat in
  r.Rdt_core.Checker.rdt

let verdict_chains pat =
  let r = Rdt_core.Checker.check_chains pat in
  r.Rdt_core.Checker.rdt

let verdict_doubling pat =
  let r = Rdt_core.Checker.check_doubling pat in
  r.Rdt_core.Checker.rdt
