(* A1 fixture: call sites of [@@ocaml.deprecated] values.
   The deprecated wrappers live in the fixture-local [Old_api] (the
   tree itself no longer exports any deprecated API), and the alert is
   silenced exactly the way drifting code would silence it — the lint
   must catch the uses anyway, from the cmt attributes. *)

[@@@ocaml.alert "-deprecated"]

let verdict pat =
  let r = Old_api.check pat in
  r.Rdt_core.Checker.rdt

let verdict_chains pat =
  let r = Old_api.check_chains pat in
  r.Rdt_core.Checker.rdt

let verdict_doubling pat =
  let r = Old_api.check_doubling pat in
  r.Rdt_core.Checker.rdt
