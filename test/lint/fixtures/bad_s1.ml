(* S1 fixture: raw Unix file and socket primitives outside the
   sanctioned unit (lib/durable/io.ml) and outside any allowlisted
   acquire site.  Every descriptor is closed so L1 stays silent: each
   finding here is S1's alone. *)

let copy_tail src dst =
  let fd = Unix.openfile src [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 512 in
  let n = Unix.read fd buf 0 512 in
  let out = Unix.openfile dst [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let _ = Unix.write out buf 0 n in
  let _ = Unix.write_substring out "x" 0 1 in
  Unix.fsync out;
  Unix.ftruncate out n;
  Unix.close fd;
  Unix.close out;
  Unix.rename src dst;
  Unix.unlink src

let roundtrip_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let c, _ = Unix.accept fd in
  Unix.close c;
  Unix.close fd
