(* D2 fixture: polymorphic comparison/hashing at types where it is
   unsound (cached fields, functions) or order-unstable. *)

let eq_pattern (a : Rdt_pattern.Pattern.t) b = a = b
let neq_pattern (a : Rdt_pattern.Pattern.t) b = a <> b
let cmp_graph (a : Rdt_pattern.Rgraph.t) b = compare a b
let hash_set (s : Rdt_pattern.Bitset.t) = Hashtbl.hash s
let cmp_funs (f : int -> int) (g : int -> int) = compare f g
let find_pattern (p : Rdt_pattern.Pattern.t) ps = List.mem p ps
