(* A2 fixture: "observability" code (this directory is passed as
   --obs-prefix by the expect test) mutating pattern-layer state. *)

let corrupt_reachability g c =
  let s = Rdt_pattern.Rgraph.reachable_set g c in
  Rdt_pattern.Bitset.add s 0;
  s

let scramble_events p =
  let es = Rdt_pattern.Pattern.events p 0 in
  es.(0) <- es.(Array.length es - 1);
  es

let inflate_vector v =
  Rdt_dist.Vclock.set v 0 99;
  Rdt_dist.Vclock.incr v 1;
  v
