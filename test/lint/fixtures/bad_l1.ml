(* L1 fixture: acquired descriptors that never reach a release, a
   return, or a store.  Acquisition goes through Rdt_durable.Io so S1
   stays silent: each finding here is L1's alone. *)

(* every occurrence is a neutral fd op: leaks on every call *)
let leak_simple path =
  let fd = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0 in
  let buf = Bytes.create 16 in
  ignore (Rdt_durable.Io.recv fd buf 0 16)

let open_ro path = Rdt_durable.Io.openfile ~name:"ro" path [ Unix.O_RDONLY ] 0

(* the acquire is a helper whose summary says it opens: still a leak *)
let leak_via_helper path =
  let fd = open_ro path in
  let buf = Bytes.create 16 in
  ignore (Rdt_durable.Io.recv fd buf 0 16)

(* discarded on the spot, three ways *)
let drop_ignore path = ignore (Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0)

let drop_pattern path =
  let _ = Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0 in
  ()

let drop_seq path =
  Rdt_durable.Io.openfile ~name:"x" path [ Unix.O_RDONLY ] 0;
  ()
