(* A2 fixture: observation-only access — reads, folds, and building a
   *fresh* pattern through the Builder are all sanctioned. *)

let reach_count g c =
  Rdt_pattern.Bitset.cardinal (Rdt_pattern.Rgraph.reachable_set g c)

let forced_count p =
  Rdt_pattern.Pattern.fold_ckpts p ~init:0 ~f:(fun acc c ->
      match c.Rdt_pattern.Types.kind with Forced -> acc + 1 | _ -> acc)

let vector_weight v =
  let total = ref 0 in
  Rdt_dist.Vclock.iteri v ~f:(fun _ x -> total := !total + x);
  (!total, Rdt_dist.Vclock.nnz v)

let fresh_two_process () =
  let b = Rdt_pattern.Pattern.Builder.create ~n:2 in
  let _c0 = Rdt_pattern.Pattern.Builder.checkpoint b 0 in
  let _c1 = Rdt_pattern.Pattern.Builder.checkpoint b 1 in
  Rdt_pattern.Pattern.Builder.finish b
