(* R2 fixture: interprocedural shapes that are safe — a helper writing
   through its parameter is fine when the argument is task-local, and a
   helper accumulating through an Atomic is always fine. *)

let bump t x = t := !t + x

let task_local xs =
  Rdt_harness.Pool.map ~jobs:2
    (fun x ->
      let acc = ref 0 in
      bump acc x;
      !acc)
    xs

let atomic_bump total x = Atomic.fetch_and_add total x

let atomic_tasks xs =
  let total = Atomic.make 0 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> ignore (atomic_bump total x)) xs in
  Atomic.get total
