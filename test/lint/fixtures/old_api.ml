(* Support module for the A1 fixture: deprecated wrappers in the style
   of the retired [Checker.check*] compat shims.  Defining a deprecated
   value is not a finding — only call sites are (see bad_a1.ml).  The
   attribute must live in a separate compilation unit because the
   compiler only records it in [val_attributes] across a module
   boundary; a same-unit reference never sees it. *)

let check pat = Rdt_core.Checker.run ~algo:`Rgraph pat
[@@ocaml.deprecated "Use Checker.run ~algo:`Rgraph instead."]

let check_chains pat = Rdt_core.Checker.run ~algo:`Chains pat
[@@ocaml.deprecated "Use Checker.run ~algo:`Chains instead."]

let check_doubling pat = Rdt_core.Checker.run ~algo:`Doubling pat
[@@ocaml.deprecated "Use Checker.run ~algo:`Doubling instead."]
