(* D2 fixture: explicit, type-specific comparison — and polymorphic
   compare at immediate types, which the rule must not flag. *)

let eq_pattern = Rdt_pattern.Pattern.equal
let cmp_pattern = Rdt_pattern.Pattern.compare
let eq_set = Rdt_pattern.Bitset.equal
let cmp_ints (a : int) (b : int) = compare a b
let eq_strings (a : string) (b : string) = a = b
let find_int (x : int) xs = List.mem x xs
