(* A1 fixture: the supported entry point. *)

let verdict pat =
  let r = Rdt_core.Checker.run ~algo:`Rgraph pat in
  r.Rdt_core.Checker.rdt

let all_agree pat =
  Rdt_core.Checker.all_algos
  |> List.for_all (fun algo -> (Rdt_core.Checker.run ~algo pat).Rdt_core.Checker.rdt)
