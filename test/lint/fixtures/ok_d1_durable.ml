(* D1 fixture: durable-style code on the sanctioned routes — timestamps
   through Meter.now, transient-I/O retries without wall-clock pacing,
   deterministic crash injection instead of ambient entropy. *)

let stamp () = Rdt_obs.Meter.now ()

let retry f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) when attempt < 5 -> go (attempt + 1)
  in
  go 1

let crash_site () = Rdt_durable.Crashpoint.hit "fixture"
