(* The deprecation attribute must sit on the [val] declarations: the
   compiler only carries it into [val_attributes] (where both its own
   alert and rule A1 read it) from a signature, never from the [let]. *)

val check : Rdt_pattern.Pattern.t -> Rdt_core.Checker.report
[@@ocaml.deprecated "Use Checker.run ~algo:`Rgraph instead."]

val check_chains : Rdt_pattern.Pattern.t -> Rdt_core.Checker.report
[@@ocaml.deprecated "Use Checker.run ~algo:`Chains instead."]

val check_doubling : Rdt_pattern.Pattern.t -> Rdt_core.Checker.report
[@@ocaml.deprecated "Use Checker.run ~algo:`Doubling instead."]
