(* D1 fixture: the sanctioned routes the rule points to. *)

let draw rng = Rdt_dist.Rng.int rng 10
let stamp () = Rdt_obs.Meter.now ()

let dump tbl =
  Rdt_dist.Tbl.iter_sorted ~compare:String.compare
    (fun k v -> Printf.printf "%s=%d\n" k v)
    tbl

let total tbl =
  Rdt_dist.Tbl.bindings_sorted ~compare:String.compare tbl
  |> List.fold_left (fun acc (_, v) -> acc + v) 0
