(* R2 fixture: the two documented R1 false negatives — a task passed as
   a bare identifier, and mutation hidden behind a call — plus a
   two-hop call chain.  None of these contain a write literally inside
   the closure argument, so R1 stays silent on every one. *)

let total = ref 0

let bump_global x = total := !total + x

(* ident-passed closure: the task is just a name *)
let ident_task xs = Rdt_harness.Pool.map ~jobs:2 bump_global xs

let bump t x = t := !t + x

(* write behind a call: the task calls a helper that writes through its
   parameter, and the actual argument is captured from outside *)
let write_behind_call xs =
  let acc = ref 0 in
  let _ = Rdt_harness.Pool.map ~jobs:2 (fun x -> bump acc x) xs in
  !acc

let tally = ref 0

let note x = tally := !tally + x

let record x = note x

(* two hops down: the witness carries the via chain *)
let via_chain xs = Rdt_harness.Pool.map ~jobs:2 record xs
