(* rdtlint --json round-trip: every line of the JSON output must parse,
   carry exactly the five fields, and rebuild — in order — the very
   lines the plain-text run printed.  Usage:

     test_json PLAIN.out JSON.out

   where both files come from the same fixture lint (see dune). *)

module Json = Rdt_obs.Trace.Json

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("test_json: " ^ m); exit 1) fmt

let field name line j =
  match Json.member name j with
  | Some v -> v
  | None -> fail "missing field %S in: %s" name line

let str name line j =
  match field name line j with
  | Json.String s -> s
  | _ -> fail "field %S is not a string in: %s" name line

let int name line j =
  match field name line j with
  | Json.Int n -> n
  | _ -> fail "field %S is not an int in: %s" name line

let () =
  let plain_path, json_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ -> fail "usage: test_json PLAIN.out JSON.out"
  in
  let plain = read_lines plain_path in
  let json = read_lines json_path in
  if List.length plain <> List.length json then
    fail "line counts differ: %d plain vs %d json" (List.length plain) (List.length json);
  if plain = [] then fail "empty outputs: the fixture lint found nothing";
  List.iter2
    (fun p jline ->
      let j =
        match Json.parse jline with
        | Ok j -> j
        | Error e -> fail "unparseable JSON line (%s): %s" e jline
      in
      (match j with
      | Json.Obj fields ->
          let names = List.map fst fields in
          if names <> [ "file"; "line"; "col"; "rule"; "msg" ] then
            fail "unexpected fields [%s] in: %s" (String.concat "; " names) jline
      | _ -> fail "not a JSON object: %s" jline);
      let rebuilt =
        Printf.sprintf "%s:%d:%d [%s] %s" (str "file" jline j) (int "line" jline j)
          (int "col" jline j) (str "rule" jline j) (str "msg" jline j)
      in
      if not (String.equal rebuilt p) then
        fail "round-trip mismatch:\n  plain: %s\n  json : %s" p rebuilt;
      (* serializer round-trip: to_string output reparses to the same value *)
      match Json.parse (Json.to_string j) with
      | Ok j' when j' = j -> ()
      | Ok _ -> fail "Json.to_string changed the value for: %s" jline
      | Error e -> fail "Json.to_string produced unparseable output (%s) for: %s" e jline)
    plain json;
  Printf.printf "test_json: %d findings round-tripped\n" (List.length plain)
