(* Differential suite for the incremental online checker.

   The online engine must agree with the offline checkers everywhere:
   - pattern mode: [Online.check_pattern] (and [Checker.run ~algo:`Online])
     reproduces the R-graph/TDV checker's verdict, dependency count and
     violation report exactly, on random small patterns;
   - stream mode: feeding a recorded run trace gives the offline verdict
     of the finished pattern, across registry protocols x environments x
     seeds, with and without network faults and crash/recovery (where the
     engine must rebuild through Rollback/Replay events);
   - prefix mode: after EVERY event of a live trace, [rdt_so_far] equals
     the offline verdict of the pattern that prefix produces, and the
     latched [first_violation] index equals the offline linear scan's. *)

module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Tdv = Rdt_pattern.Tdv
module Checker = Rdt_core.Checker
module Runtime = Rdt_core.Runtime
module Registry = Rdt_core.Registry
module Trace = Rdt_obs.Trace
module CS = Rdt_failures.Crash_sim
module Online = Rdt_check.Online

let check = Alcotest.(check bool)

let qt = QCheck_alcotest.to_alcotest

let runtime_config ?(n = 5) ?(messages = 150) ?(faults = Rdt_dist.Faults.none) ?transport
    ~envname ~seed ~trace protocol =
  let env = Rdt_workloads.Registry.find_exn envname in
  {
    (Runtime.default_config env protocol) with
    Runtime.n;
    seed;
    max_messages = messages;
    faults;
    transport;
    trace;
  }

(* ------------------------------------------------------------------ *)
(* Pattern mode                                                        *)
(* ------------------------------------------------------------------ *)

let online_equals_rgraph_on_patterns =
  QCheck.Test.make ~name:"online report = rgraph report on random patterns" ~count:100
    Rdt_test_helpers.Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Rdt_test_helpers.Gen.pattern_of_recipe recipe in
      let off = Checker.run pat in
      let on = Checker.run ~algo:`Online pat in
      on.Checker.rdt = off.Checker.rdt
      && on.Checker.checked = off.Checker.checked
      && on.Checker.violations = off.Checker.violations)

let online_agrees_with_all_checkers =
  QCheck.Test.make ~name:"online verdict = chains = doubling" ~count:60
    Rdt_test_helpers.Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Rdt_test_helpers.Gen.pattern_of_recipe recipe in
      let v = (Checker.run ~algo:`Online pat).Checker.rdt in
      v = (Checker.run ~algo:`Chains pat).Checker.rdt
      && v = (Checker.run ~algo:`Doubling pat).Checker.rdt)

(* ------------------------------------------------------------------ *)
(* Stream mode: live traces of full runs                               *)
(* ------------------------------------------------------------------ *)

let stream_verdict label events pat =
  match Online.check_trace events with
  | Error e -> Alcotest.failf "%s: online engine rejected the trace: %s" label e
  | Ok t ->
      let off = Checker.run pat in
      if Online.rdt_so_far t <> off.Checker.rdt then
        Alcotest.failf "%s: online verdict %b <> offline %b" label (Online.rdt_so_far t)
          off.Checker.rdt;
      if Online.checked t <> off.Checker.checked then
        Alcotest.failf "%s: online checked %d <> offline %d" label (Online.checked t)
          off.Checker.checked;
      if off.Checker.rdt <> (Checker.run ~algo:`Chains pat).Checker.rdt then
        Alcotest.failf "%s: chains disagrees" label;
      if off.Checker.rdt <> (Checker.run ~algo:`Doubling pat).Checker.rdt then
        Alcotest.failf "%s: doubling disagrees" label;
      t

let test_stream_matrix () =
  List.iter
    (fun protocol ->
      let pname = Rdt_core.Protocol.name protocol in
      List.iter
        (fun envname ->
          List.iter
            (fun seed ->
              let tr = Trace.ring ~capacity:100_000 in
              let r = Runtime.run (runtime_config ~envname ~seed ~trace:tr protocol) in
              let label = Printf.sprintf "%s/%s seed %d" pname envname seed in
              ignore (stream_verdict label (Trace.events tr) r.Runtime.pattern))
            [ 1; 2 ])
        [ "random"; "group"; "client-server" ])
    Registry.all

let test_stream_under_faults () =
  let faults =
    {
      Rdt_dist.Faults.drop = 0.15;
      dup = 0.05;
      reorder = 0.05;
      reorder_window = 40;
      partitions = [ { Rdt_dist.Faults.between = [ 1 ]; from_t = 1000; to_t = 2500 } ];
      intermittent = [];
    }
  in
  List.iter
    (fun pname ->
      List.iter
        (fun seed ->
          let tr = Trace.ring ~capacity:200_000 in
          let cfg =
            runtime_config ~envname:"random" ~seed ~trace:tr ~faults
              ~transport:Rdt_dist.Transport.default_params (Registry.find_exn pname)
          in
          let r = Runtime.run cfg in
          let label = Printf.sprintf "faulty %s seed %d" pname seed in
          let t = stream_verdict label (Trace.events tr) r.Runtime.pattern in
          ignore t)
        [ 1; 2; 3 ])
    [ "bhmr"; "none" ]

let test_stream_crashrun () =
  let crashes =
    [
      { CS.victim = 2; at = 2000; repair_delay = 200 };
      { CS.victim = 0; at = 4500; repair_delay = 300 };
    ]
  in
  List.iter
    (fun (pname, faults, transport) ->
      List.iter
        (fun seed ->
          let tr = Trace.ring ~capacity:200_000 in
          let p = Registry.find_exn pname in
          let env = Rdt_workloads.Registry.find_exn "random" in
          let r =
            CS.run
              {
                (CS.default_config env p) with
                CS.n = 5;
                seed;
                max_messages = 300;
                crashes;
                faults;
                transport;
                trace = tr;
              }
          in
          let events = Trace.events tr in
          check "rollbacks recorded" true
            (List.exists (function Trace.Rollback _ -> true | _ -> false) events);
          let label = Printf.sprintf "crashrun %s seed %d" pname seed in
          let t = stream_verdict label events r.CS.pattern in
          check (label ^ ": engine rebuilt through rollbacks") true (Online.rebuilds t > 0))
        [ 1; 2; 3 ])
    [
      ("bhmr", Rdt_dist.Faults.none, None);
      ("fdas", { Rdt_dist.Faults.none with drop = 0.15 }, Some Rdt_dist.Transport.default_params);
    ]

(* ------------------------------------------------------------------ *)
(* Prefix mode: the per-event verdict against an offline oracle        *)
(* ------------------------------------------------------------------ *)

(* The pattern a (rollback-free) trace prefix produces.  A message still
   in flight at the cut cannot be expressed by the builder (finish would
   reject the undelivered send), but for the verdict its send is exactly
   an internal event: no R-edge, no TDV effect, one event in the open
   interval. *)
let prefix_pattern ~n events =
  let delivered = Hashtbl.create 64 in
  List.iter
    (fun ev -> match ev with Trace.Deliver { msg; _ } -> Hashtbl.replace delivered msg () | _ -> ())
    events;
  let b = P.Builder.create ~n in
  let handles = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Send { msg; src; dst; time } ->
          if Hashtbl.mem delivered msg then
            Hashtbl.replace handles msg (P.Builder.send ~time b ~src ~dst)
          else P.Builder.internal ~time b src
      | Trace.Deliver { msg; time; _ } -> P.Builder.recv ~time b (Hashtbl.find handles msg)
      | Trace.Internal { pid; time } -> P.Builder.internal ~time b pid
      | Trace.Ckpt { kind = T.Initial; _ } -> ()
      | Trace.Ckpt { pid; kind; time; tdv; _ } ->
          ignore (P.Builder.checkpoint ~kind ?tdv ~time b pid)
      | _ -> ())
    events;
  P.Builder.finish ~final_checkpoints:true b

let test_prefix_oracle () =
  (* one protocol that violates RDT and one that keeps it *)
  List.iter
    (fun (pname, seed) ->
      let tr = Trace.ring ~capacity:50_000 in
      let r =
        Runtime.run
          (runtime_config ~n:4 ~messages:60 ~envname:"random" ~seed ~trace:tr
             (Registry.find_exn pname))
      in
      ignore r;
      let events = Trace.events tr in
      let t = Online.create ~n:4 () in
      let oracle_first = ref None in
      List.iteri
        (fun k ev ->
          Online.observe t ev;
          let prefix = List.filteri (fun i _ -> i <= k) events in
          let off = (Checker.run (prefix_pattern ~n:4 prefix)).Checker.rdt in
          if off <> Online.rdt_so_far t then
            Alcotest.failf "%s seed %d: prefix %d/%d: online %b <> offline %b" pname seed k
              (List.length events) (Online.rdt_so_far t) off;
          if !oracle_first = None && not off then oracle_first := Some k)
        events;
      if Online.first_violation t <> !oracle_first then
        Alcotest.failf "%s seed %d: first violation %s <> oracle %s" pname seed
          (match Online.first_violation t with None -> "none" | Some i -> string_of_int i)
          (match !oracle_first with None -> "none" | Some i -> string_of_int i))
    [ ("none", 1); ("none", 2); ("bhmr", 1) ];
  (* the violating cell must actually violate, or the test is vacuous *)
  let tr = Trace.ring ~capacity:50_000 in
  let _ =
    Runtime.run
      (runtime_config ~n:4 ~messages:60 ~envname:"random" ~seed:1 ~trace:tr
         (Registry.find_exn "none"))
  in
  match Online.check_trace (Trace.events tr) with
  | Error e -> Alcotest.fail e
  | Ok t -> check "none seed 1 violates" true (Online.first_violation t <> None)

(* ------------------------------------------------------------------ *)
(* Engine-level unit tests                                             *)
(* ------------------------------------------------------------------ *)

(* the backwards same-process R-path fixture of test_oracle, as a stream:
   C_{0,2} ~> C_{0,1} through a Z-cycle-free zigzag; then a rollback that
   removes the offending send and clears the live verdict while the
   first-violation latch stays *)
let test_rollback_retraction () =
  let t = Online.create ~n:2 () in
  let ev l = List.iter (Online.observe t) l in
  ev
    [
      Trace.Send { msg = 2; src = 1; dst = 0; time = 10 } (* event 0 *);
      Trace.Deliver { msg = 2; src = 1; dst = 0; time = 20 } (* 1 *);
      Trace.Ckpt { pid = 0; index = 1; kind = T.Basic; time = 30; tdv = None; preds = [] } (* 2 *);
      Trace.Ckpt { pid = 0; index = 2; kind = T.Basic; time = 40; tdv = None; preds = [] } (* 3 *);
      Trace.Send { msg = 1; src = 0; dst = 1; time = 50 } (* 4 *);
    ];
  check "still fine before the closing delivery" true (Online.rdt_so_far t);
  ev [ Trace.Deliver { msg = 1; src = 0; dst = 1; time = 60 } (* 5: closes the R-path *) ];
  check "violated after delivery" false (Online.rdt_so_far t);
  check "first violation latched at event 5" true (Online.first_violation t = Some 5);
  check "backwards pair is a cycle" true (Online.zcycle t);
  check "C(0,2) reaches C(0,1)" true (Online.reaches t (0, 2) (0, 1));
  check "C(0,2) ~> C(0,1) not trackable" false (Online.trackable t (0, 2) (0, 1));
  (* the domino cascade: P1's rollback orphans P0's delivery of m2 until
     P0's own rollback arrives; the verdict in between is computed on the
     cleaned state *)
  ev [ Trace.Rollback { pid = 1; to_index = 0; time = 70 } (* 6 *) ];
  check "m2's delivery is orphaned mid-cascade" true (Online.orphan_messages t = [ 2 ]);
  check "verdict already clears on the cleaned state" true (Online.rdt_so_far t);
  ev [ Trace.Rollback { pid = 0; to_index = 0; time = 71 } (* 7 *) ];
  check "cascade complete: no orphans" true (Online.orphan_messages t = []);
  check "verdict clear after the rollback" true (Online.rdt_so_far t);
  check "latch survives the rollback" true (Online.first_violation t = Some 5);
  check "two rebuilds" true (Online.rebuilds t = 2);
  check "rolled-back checkpoint is gone" true
    (match Online.trackable t (0, 2) (0, 0) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* an orphaned stream end is inconsistent, exactly like Replay.rebuild *)
  match
    Online.check_trace
      [
        Trace.Send { msg = 9; src = 0; dst = 1; time = 1 };
        Trace.Deliver { msg = 9; src = 0; dst = 1; time = 2 };
        Trace.Rollback { pid = 0; to_index = 0; time = 3 };
      ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stream ending mid-cascade accepted"

(* A stream that ends mid-cascade must name *every* orphaned message in
   its error (parity with Replay.rebuild), not just the first one the
   table iteration happened to yield. *)
let test_orphan_end_reports_all () =
  (match
     Online.check_trace
       [
         Trace.Ckpt { pid = 0; index = 1; kind = T.Basic; time = 0; tdv = None; preds = [] };
         Trace.Send { msg = 4; src = 0; dst = 1; time = 1 };
         Trace.Send { msg = 2; src = 0; dst = 1; time = 2 };
         Trace.Deliver { msg = 4; src = 0; dst = 1; time = 3 };
         Trace.Deliver { msg = 2; src = 0; dst = 1; time = 4 };
         Trace.Rollback { pid = 0; to_index = 1; time = 5 };
       ]
   with
  | Ok _ -> Alcotest.fail "stream ending with two orphans accepted"
  | Error e ->
      Alcotest.(check string)
        "all orphan ids, sorted" "surviving deliveries of rolled-back sends 2, 4" e);
  match
    Online.check_trace
      [
        Trace.Send { msg = 9; src = 0; dst = 1; time = 1 };
        Trace.Deliver { msg = 9; src = 0; dst = 1; time = 2 };
        Trace.Rollback { pid = 0; to_index = 0; time = 3 };
      ]
  with
  | Ok _ -> Alcotest.fail "stream ending with one orphan accepted"
  | Error e ->
      Alcotest.(check string) "singular form" "surviving delivery of rolled-back send 9" e

(* Export/restore: the recovered engine must answer every query exactly
   like the exporting one — including mid-cascade orphans, the latched
   first violation and the rebuild count — and keep agreeing on the rest
   of the stream. *)
let test_export_restore_roundtrip () =
  List.iter
    (fun (pname, envname, seed) ->
      let tr = Trace.ring ~capacity:100_000 in
      ignore (Runtime.run (runtime_config ~envname ~seed ~trace:tr (Registry.find_exn pname)));
      let events = Trace.events tr in
      let total = List.length events in
      List.iter
        (fun cut ->
          let prefix = List.filteri (fun i _ -> i < cut) events in
          let rest = List.filteri (fun i _ -> i >= cut) events in
          match Online.trace_process_count events with
          | Error e -> Alcotest.fail e
          | Ok n ->
              let live = Online.create ~n () in
              List.iter (Online.observe live) prefix;
              let restored = Online.restore (Online.export live) in
              check "summary equal at the cut" true (Online.summary restored = Online.summary live);
              check "violations equal at the cut" true
                (Online.violations restored = Online.violations live);
              check "orphans equal at the cut" true
                (Online.orphan_messages restored = Online.orphan_messages live);
              List.iter (Online.observe live) rest;
              List.iter (Online.observe restored) rest;
              check "summary equal at the end" true
                (Online.summary restored = Online.summary live);
              check "export idempotent" true
                (Online.export restored = Online.export live))
        [ 0; 1; total / 3; total / 2; total - 1; total ])
    [ ("bhmr", "random", 5); ("none", "group", 2) ]

let test_trackable_matches_tdv () =
  let tr = Trace.ring ~capacity:100_000 in
  let r = Runtime.run (runtime_config ~envname:"group" ~seed:3 ~trace:tr (Registry.find_exn "bhmr")) in
  match Online.check_trace (Trace.events tr) with
  | Error e -> Alcotest.fail e
  | Ok t ->
      let pat = r.Runtime.pattern in
      let tdv = Tdv.compute pat in
      let cks = ref [] in
      P.iter_ckpts pat (fun c -> cks := (c.T.owner, c.T.index) :: !cks);
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if Online.trackable t a b <> Tdv.trackable tdv a b then
                Alcotest.failf "trackable disagrees on C%s ~> C%s"
                  (Format.asprintf "%a" T.pp_ckpt_id a)
                  (Format.asprintf "%a" T.pp_ckpt_id b))
            !cks)
        !cks

let test_runtime_online_field () =
  List.iter
    (fun (pname, seed) ->
      let cfg =
        {
          (runtime_config ~envname:"random" ~seed ~trace:Trace.null (Registry.find_exn pname)) with
          Runtime.online = true;
        }
      in
      let r = Runtime.run cfg in
      match r.Runtime.online with
      | None -> Alcotest.fail "config asked for the online checker but the result has no summary"
      | Some s ->
          let off = Checker.run r.Runtime.pattern in
          check
            (Printf.sprintf "%s seed %d: runtime online verdict = offline" pname seed)
            off.Checker.rdt s.Online.rdt;
          (* only one direction: a final-RDT run may still latch a transient
             prefix violation that a later delivery cured *)
          if not off.Checker.rdt then
            check
              (Printf.sprintf "%s seed %d: violating runs carry a first-violation index" pname seed)
              true
              (s.Online.first_violation <> None))
    [ ("none", 1); ("bhmr", 1) ]

let test_inconsistent_streams_rejected () =
  List.iter
    (fun (label, events) ->
      match Online.check_trace events with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: accepted" label)
    [
      ("unknown delivery", [ Trace.Deliver { msg = 3; src = 0; dst = 1; time = 5 } ]);
      ( "undeliverable delivered",
        [
          Trace.Send { msg = 3; src = 0; dst = 1; time = 1 };
          Trace.Undeliverable { msg = 3; src = 0; dst = 1; time = 2 };
          Trace.Deliver { msg = 3; src = 0; dst = 1; time = 5 };
        ] );
      ( "rollback to missing checkpoint",
        [
          Trace.Internal { pid = 0; time = 1 };
          Trace.Rollback { pid = 0; to_index = 2; time = 3 };
        ] );
      ("empty", []);
    ]

let () =
  Alcotest.run "rdt_online"
    [
      ("pattern mode", [ qt online_equals_rgraph_on_patterns; qt online_agrees_with_all_checkers ]);
      ( "stream mode",
        [
          Alcotest.test_case "registry x env x seed matrix" `Quick test_stream_matrix;
          Alcotest.test_case "under network faults" `Quick test_stream_under_faults;
          Alcotest.test_case "crash and recovery" `Quick test_stream_crashrun;
        ] );
      ( "per-event",
        [
          Alcotest.test_case "prefix verdicts = offline oracle" `Quick test_prefix_oracle;
          Alcotest.test_case "rollback retraction and latch" `Quick test_rollback_retraction;
          Alcotest.test_case "orphaned stream end names every orphan" `Quick
            test_orphan_end_reports_all;
          Alcotest.test_case "export/restore roundtrip" `Quick test_export_restore_roundtrip;
          Alcotest.test_case "trackable = TDV replay" `Quick test_trackable_matches_tdv;
          Alcotest.test_case "runtime online observer" `Quick test_runtime_online_field;
          Alcotest.test_case "impossible streams rejected" `Quick test_inconsistent_streams_rejected;
        ] );
    ]
