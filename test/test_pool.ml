(* Determinism of the parallel experiment grid.

   Headline: sharding a grid over the Pool changes nothing but the
   wall-clock — for every registry protocol x environment the per-run
   metrics are identical under jobs 1/2/4/8, and whole experiment tables
   (including the TAB-FAULTS fault grid) render byte-identical rows for
   every worker count.  Plus unit tests for Pool.map itself: order,
   exception propagation, argument validation and RDT_JOBS parsing. *)

module Pool = Rdt_harness.Pool
module Experiments = Rdt_harness.Experiments
module Table = Rdt_harness.Table
module Bench_report = Rdt_harness.Bench_report
module Runtime = Rdt_core.Runtime
module Registry = Rdt_core.Registry
module Protocol = Rdt_core.Protocol

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pool.map                                                            *)
(* ------------------------------------------------------------------ *)

let test_map_is_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expect = List.map f xs in
  List.iter
    (fun jobs -> Alcotest.(check (list int)) (Printf.sprintf "jobs=%d" jobs) expect (Pool.map ~jobs f xs))
    [ 1; 2; 8 ];
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 7 ] (Pool.map ~jobs:4 f [ 7 ])

let test_map_timed_results () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  let timed = Pool.map_timed ~jobs:2 (fun x -> x * 10) xs in
  Alcotest.(check (list int)) "values" (List.map (fun x -> x * 10) xs) (List.map fst timed);
  check "timings are non-negative" true (List.for_all (fun (_, dt) -> dt >= 0.0) timed)

let test_map_invalid_jobs () =
  check "jobs=0 rejected" true
    (try
       ignore (Pool.map ~jobs:0 Fun.id [ 1 ]);
       false
     with Invalid_argument _ -> true)

exception Boom of int

let test_map_exception_propagation () =
  (* the smallest failing index wins, independent of scheduling *)
  List.iter
    (fun jobs ->
      match Pool.map ~jobs (fun x -> if x mod 3 = 0 then raise (Boom x) else x) (List.init 20 (fun i -> i + 1)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) 3 x)
    [ 1; 2; 8 ]

let test_default_jobs_env () =
  let with_env v f =
    let old = Sys.getenv_opt "RDT_JOBS" in
    Unix.putenv "RDT_JOBS" v;
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "RDT_JOBS" (Option.value old ~default:""))
  in
  with_env "3" (fun () -> Alcotest.(check int) "RDT_JOBS=3" 3 (Pool.default_jobs ()));
  with_env "0" (fun () -> Alcotest.(check int) "RDT_JOBS=0 falls back" 1 (Pool.default_jobs ()));
  with_env "wat" (fun () -> Alcotest.(check int) "garbage falls back" 1 (Pool.default_jobs ()));
  with_env "9999" (fun () -> Alcotest.(check int) "clamped" 128 (Pool.default_jobs ()))

(* ------------------------------------------------------------------ *)
(* Per-cell metrics: registry x environments                           *)
(* ------------------------------------------------------------------ *)

let environments = [ "random"; "group"; "client-server"; "prodcons"; "master-worker"; "stencil" ]

let run_cell (pname, ename) =
  let protocol = Registry.find_exn pname in
  let env = Rdt_workloads.Registry.find_exn ename in
  let r =
    Runtime.run
      {
        (Runtime.default_config env protocol) with
        Runtime.n = 5;
        seed = Rdt_dist.Rng.derive_seed 1 (pname ^ "/" ^ ename);
        max_messages = 150;
      }
  in
  (r.Runtime.metrics, r.Runtime.predicate_counts)

let test_registry_grid_metrics () =
  (* every protocol in the registry, every environment: the pool must
     reproduce the sequential per-cell metrics exactly *)
  let cells =
    List.concat_map
      (fun p -> List.map (fun e -> (Protocol.name p, e)) environments)
      Registry.all
  in
  let sequential = List.map run_cell cells in
  List.iter
    (fun jobs ->
      let parallel = Pool.map ~jobs run_cell cells in
      List.iteri
        (fun i ((pname, ename), (seq, par)) ->
          ignore i;
          check (Printf.sprintf "jobs=%d %s/%s" jobs pname ename) true (seq = par))
        (List.combine cells (List.combine sequential parallel)))
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* Whole tables: byte-identical rows for every worker count            *)
(* ------------------------------------------------------------------ *)

let table_repr t = (Table.header t, Table.rows t)

let test_table_protocols_jobs_independent () =
  let reference = table_repr (Experiments.table_protocols ~jobs:1 ~seeds:[ 1 ] ()) in
  let again = table_repr (Experiments.table_protocols ~jobs:4 ~seeds:[ 1 ] ()) in
  check "TAB-PROTOCOLS rows identical under jobs=4" true (reference = again)

let test_table_faults_jobs_independent () =
  (* the TAB-FAULTS grid runs paired faulty/reliable cells through the
     transport; still bit-identical when sharded *)
  let reference = table_repr (Experiments.table_faults ~jobs:1 ~seeds:[ 1 ] ()) in
  let again = table_repr (Experiments.table_faults ~jobs:4 ~seeds:[ 1 ] ()) in
  check "TAB-FAULTS rows identical under jobs=4" true (reference = again)

let test_claim_worker_count_independent () =
  (* same measured reductions for 1, 2 and 8 workers *)
  let reference = Experiments.claim_ten_percent ~jobs:1 ~seeds:[ 1; 2 ] () in
  List.iter
    (fun jobs ->
      let again = Experiments.claim_ten_percent ~jobs ~seeds:[ 1; 2 ] () in
      check (Printf.sprintf "CLAIM-10PCT identical under jobs=%d" jobs) true (reference = again))
    [ 2; 8 ]

let test_report_cell_sequence () =
  (* the report records the same cells in the same (grid) order whether
     or not the grid was sharded; only the timings differ *)
  let coords r =
    List.map
      (fun (c : Bench_report.cell) -> (c.table, c.protocol, c.env, c.seed))
      (Bench_report.cells r)
  in
  let r1 = Bench_report.create ~jobs:1 in
  ignore (Experiments.table_faults ~jobs:1 ~report:r1 ~seeds:[ 1 ] ());
  let r4 = Bench_report.create ~jobs:4 in
  ignore (Experiments.table_faults ~jobs:4 ~report:r4 ~seeds:[ 1 ] ());
  check "cell sequences match" true (coords r1 = coords r4);
  check "cells were recorded" true (coords r1 <> []);
  check "json renders" true (String.length (Bench_report.to_json r4) > 0)

let () =
  Alcotest.run "rdt_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map = List.map for every jobs" `Quick test_map_is_list_map;
          Alcotest.test_case "map_timed values and timings" `Quick test_map_timed_results;
          Alcotest.test_case "invalid jobs" `Quick test_map_invalid_jobs;
          Alcotest.test_case "exception of smallest index" `Quick test_map_exception_propagation;
          Alcotest.test_case "RDT_JOBS parsing" `Quick test_default_jobs_env;
        ] );
      ( "grid determinism",
        [
          Alcotest.test_case "registry x environments metrics" `Slow test_registry_grid_metrics;
          Alcotest.test_case "TAB-PROTOCOLS byte-identical" `Slow test_table_protocols_jobs_independent;
          Alcotest.test_case "TAB-FAULTS byte-identical" `Slow test_table_faults_jobs_independent;
          Alcotest.test_case "worker-count independence (1,2,8)" `Slow test_claim_worker_count_independent;
          Alcotest.test_case "report cell sequence" `Quick test_report_cell_sequence;
        ] );
    ]
