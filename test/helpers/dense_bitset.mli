(** The original dense bitmap implementation of [Rdt_pattern.Bitset],
    preserved as the reference model for differential tests of the
    chunked replacement.  Same signature, same observable semantics. *)

type t

val create : int -> t

val capacity : t -> int

val ensure_capacity : t -> int -> unit

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val union_into : t -> t -> bool

val union_into_iter : t -> t -> f:(int -> unit) -> bool

val copy : t -> t

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val equal : t -> t -> bool
