(** Random checkpoint & communication patterns for property-based tests.

    The generator drives {!Rdt_pattern.Pattern.Builder} directly with a
    random interleaving of sends, deliveries and checkpoints — it is not
    constrained by any protocol, so the patterns freely contain non-causal
    chains, Z-cycles and RDT violations.  Everything derives
    deterministically from the seed. *)

val random_pattern : ?n:int -> ?steps:int -> seed:int -> unit -> Rdt_pattern.Pattern.t
(** [n] defaults to a seed-derived value in [\[2, 5\]]; [steps] (builder
    operations before draining) defaults to a seed-derived value in
    [\[10, 80\]]. *)

val pattern_arbitrary : Rdt_pattern.Pattern.t QCheck.arbitrary
(** QCheck arbitrary wrapping {!random_pattern} (prints the pattern
    summary on failure). *)

val small_pattern_arbitrary : Rdt_pattern.Pattern.t QCheck.arbitrary
(** Patterns small enough for exhaustive (exponential) reference
    computations: [n <= 3], few checkpoints per process. *)

(** {1 Shrinkable recipes}

    QCheck shrinks generated values, and a finished pattern cannot be
    shrunk structurally without re-running the builder — so properties
    that want shrinking generate a [recipe] (the builder's inputs) and
    materialize the pattern themselves.  Shrinking lowers [n] and
    [steps] while keeping the seed, so a failure minimizes to a smaller
    prefix of the same random walk. *)

type recipe = { seed : int; n : int; steps : int }

val pattern_of_recipe : recipe -> Rdt_pattern.Pattern.t

val recipe_arbitrary : recipe QCheck.arbitrary
(** [n] in [\[2, 5\]], [steps] in [\[10, 80\]]; shrinks [n] and [steps]. *)

val small_recipe_arbitrary : recipe QCheck.arbitrary
(** Recipes for exhaustive reference computations: [n <= 3], [steps] in
    [\[8, 20\]]; shrinks [n] and [steps]. *)

(** {1 Transport link scenarios}

    One src -> dst link of the reliable-delivery transport under a
    generated fault schedule (shared by the transport property suite and
    anything else exercising a single faulty link). *)

type link_scenario = {
  link_seed : int;
  drop : float;
  dup : float;
  reorder : float;
  window : int;
  partition : (int * int) option;  (** dst cut off during [\[from_t, to_t)] *)
  max_retx : int;
  retx_timeout : int;
  messages : int;
  send_gap : int;  (** ticks between consecutive sends *)
}

val link_scenario_arbitrary : link_scenario QCheck.arbitrary
(** Shrinks by disabling fault dimensions, then thinning traffic. *)

val faults_of_link : link_scenario -> Rdt_dist.Faults.spec
