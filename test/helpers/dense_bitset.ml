(* The original dense (flat Bytes bitmap) implementation of
   [Rdt_pattern.Bitset], kept verbatim as the differential-testing
   reference for the chunked replacement.  Test-only: production code
   must keep going through [Rdt_pattern.Bitset]. *)

type t = { mutable words : Bytes.t; mutable capacity : int }

let words_for n = (n + 63) / 64

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Bytes.make (8 * words_for n) '\000'; capacity = n }

let capacity t = t.capacity

let ensure_capacity t n =
  if n > t.capacity then begin
    let old_bytes = Bytes.length t.words in
    let new_bytes = 8 * words_for n in
    if new_bytes > old_bytes then begin
      let words = Bytes.make new_bytes '\000' in
      Bytes.blit t.words 0 words 0 old_bytes;
      t.words <- words
    end;
    t.capacity <- n
  end

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of bounds"

let get_word t w = Bytes.get_int64_le t.words (8 * w)

let set_word t w v = Bytes.set_int64_le t.words (8 * w) v

let mem t i =
  check t i;
  let w = i / 64 and b = i mod 64 in
  Int64.logand (get_word t w) (Int64.shift_left 1L b) <> 0L

let add t i =
  check t i;
  let w = i / 64 and b = i mod 64 in
  set_word t w (Int64.logor (get_word t w) (Int64.shift_left 1L b))

let remove t i =
  check t i;
  let w = i / 64 and b = i mod 64 in
  set_word t w (Int64.logand (get_word t w) (Int64.lognot (Int64.shift_left 1L b)))

let union_into dst src =
  if src.capacity > dst.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  let changed = ref false in
  for w = 0 to words_for src.capacity - 1 do
    let d = get_word dst w and s = get_word src w in
    let u = Int64.logor d s in
    if u <> d then begin
      set_word dst w u;
      changed := true
    end
  done;
  !changed

let bits_of_word f base word =
  let word = ref word in
  while !word <> 0L do
    let b = Int64.logand !word (Int64.neg !word) in
    let rec log2 v acc = if v = 1L then acc else log2 (Int64.shift_right_logical v 1) (acc + 1) in
    f (base + log2 b 0);
    word := Int64.logxor !word b
  done

let union_into_iter dst src ~f =
  if src.capacity > dst.capacity then invalid_arg "Bitset.union_into_iter: capacity mismatch";
  let changed = ref false in
  for w = 0 to words_for src.capacity - 1 do
    let d = get_word dst w and s = get_word src w in
    let delta = Int64.logand s (Int64.lognot d) in
    if delta <> 0L then begin
      set_word dst w (Int64.logor d s);
      changed := true;
      bits_of_word f (64 * w) delta
    end
  done;
  !changed

let copy t = { words = Bytes.copy t.words; capacity = t.capacity }

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let cardinal t =
  let total = ref 0 in
  for w = 0 to words_for t.capacity - 1 do
    total := !total + popcount64 (get_word t w)
  done;
  !total

let iter f t =
  for w = 0 to words_for t.capacity - 1 do
    let word = ref (get_word t w) in
    while !word <> 0L do
      let b = Int64.logand !word (Int64.neg !word) in
      let rec log2 v acc = if v = 1L then acc else log2 (Int64.shift_right_logical v 1) (acc + 1) in
      let bit = log2 b 0 in
      f ((64 * w) + bit);
      word := Int64.logxor !word b
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words
