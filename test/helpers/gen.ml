module P = Rdt_pattern.Pattern
module Rng = Rdt_dist.Rng
module Faults = Rdt_dist.Faults

let build ~n ~steps ~rng =
  let b = P.Builder.create ~n in
  let pending = ref [] in
  let npending = ref 0 in
  let pick_pending () =
    let k = Rng.int rng !npending in
    let h = List.nth !pending k in
    pending := List.filteri (fun i _ -> i <> k) !pending;
    decr npending;
    h
  in
  for _ = 1 to steps do
    let dice = Rng.float rng 1.0 in
    if dice < 0.40 || (!npending = 0 && dice < 0.80) then begin
      let src = Rng.int rng n in
      let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
      pending := P.Builder.send b ~src ~dst :: !pending;
      incr npending
    end
    else if dice < 0.80 then P.Builder.recv b (pick_pending ())
    else ignore (P.Builder.checkpoint b (Rng.int rng n))
  done;
  while !npending > 0 do
    P.Builder.recv b (pick_pending ())
  done;
  P.Builder.finish ~final_checkpoints:true b

let random_pattern ?n ?steps ~seed () =
  let rng = Rng.create seed in
  let n = match n with Some n -> n | None -> 2 + Rng.int rng 4 in
  let steps = match steps with Some s -> s | None -> 10 + Rng.int rng 71 in
  build ~n ~steps ~rng

let print_pattern p = Format.asprintf "%a" P.pp_summary p

let pattern_arbitrary =
  QCheck.make ~print:print_pattern
    (QCheck.Gen.map (fun seed -> random_pattern ~seed ()) QCheck.Gen.nat)

(* -------------------- shrinkable pattern recipes -------------------- *)

type recipe = { seed : int; n : int; steps : int }

let pattern_of_recipe r =
  let rng = Rng.create r.seed in
  build ~n:r.n ~steps:r.steps ~rng

let print_recipe r =
  Format.asprintf "recipe{seed=%d n=%d steps=%d} ~> %a" r.seed r.n r.steps P.pp_summary
    (pattern_of_recipe r)

(* Shrink towards the structural floor (n = 2, steps = min_steps); the
   seed is left alone — changing it would jump to an unrelated pattern
   rather than a smaller version of the failing one. *)
let shrink_recipe ~min_steps r yield =
  QCheck.Shrink.int (r.n - 2) (fun d -> yield { r with n = 2 + d });
  QCheck.Shrink.int (r.steps - min_steps) (fun d -> yield { r with steps = min_steps + d })

let recipe_gen ~max_n ~min_steps ~max_steps =
  let open QCheck.Gen in
  let* seed = nat in
  let* n = 2 -- max_n in
  let+ steps = min_steps -- max_steps in
  { seed; n; steps }

let recipe_arbitrary =
  QCheck.make ~print:print_recipe
    ~shrink:(shrink_recipe ~min_steps:1)
    (recipe_gen ~max_n:5 ~min_steps:10 ~max_steps:80)

let small_recipe_arbitrary =
  QCheck.make ~print:print_recipe
    ~shrink:(shrink_recipe ~min_steps:1)
    (recipe_gen ~max_n:3 ~min_steps:8 ~max_steps:20)

let small_pattern_arbitrary =
  QCheck.make ~print:print_pattern
    (QCheck.Gen.map pattern_of_recipe (recipe_gen ~max_n:3 ~min_steps:8 ~max_steps:20))

(* -------------------- transport link scenarios -------------------- *)

type link_scenario = {
  link_seed : int;
  drop : float;
  dup : float;
  reorder : float;
  window : int;
  partition : (int * int) option;
  max_retx : int;
  retx_timeout : int;
  messages : int;
  send_gap : int;
}

let link_scenario_gen =
  let open QCheck.Gen in
  let* link_seed = nat in
  let* drop = float_bound_inclusive 0.4 in
  let* dup = float_bound_inclusive 0.3 in
  let* reorder = float_bound_inclusive 0.3 in
  let* window = 1 -- 80 in
  let* partition =
    frequency [ (2, return None); (1, map (fun a -> Some (a, a + 500)) (0 -- 1500)) ]
  in
  let* max_retx = 6 -- 30 in
  let* retx_timeout = 50 -- 400 in
  let* messages = 1 -- 120 in
  let+ send_gap = 0 -- 40 in
  {
    link_seed;
    drop;
    dup;
    reorder;
    window;
    partition;
    max_retx;
    retx_timeout;
    messages;
    send_gap;
  }

let print_link_scenario s =
  Printf.sprintf
    "{seed=%d drop=%.2f dup=%.2f reorder=%.2f/%d partition=%s max_retx=%d rto=%d msgs=%d gap=%d}"
    s.link_seed s.drop s.dup s.reorder s.window
    (match s.partition with None -> "-" | Some (a, b) -> Printf.sprintf "%d-%d" a b)
    s.max_retx s.retx_timeout s.messages s.send_gap

(* Shrink by disabling fault dimensions one at a time, then by thinning
   the traffic — each step keeps the scenario well-formed. *)
let shrink_link_scenario s yield =
  if s.partition <> None then yield { s with partition = None };
  if s.drop > 0.0 then yield { s with drop = 0.0 };
  if s.dup > 0.0 then yield { s with dup = 0.0 };
  if s.reorder > 0.0 then yield { s with reorder = 0.0 };
  QCheck.Shrink.int (s.messages - 1) (fun d -> yield { s with messages = 1 + d });
  QCheck.Shrink.int s.send_gap (fun d -> yield { s with send_gap = d })

let link_scenario_arbitrary =
  QCheck.make ~print:print_link_scenario ~shrink:shrink_link_scenario link_scenario_gen

let faults_of_link s =
  {
    Faults.none with
    drop = s.drop;
    dup = s.dup;
    reorder = s.reorder;
    reorder_window = (if s.reorder > 0.0 then s.window else 0);
    partitions =
      (match s.partition with
      | None -> []
      | Some (from_t, to_t) -> [ { Faults.between = [ 1 ]; from_t; to_t } ]);
  }
