(* The scaled engine: determinism across worker counts, conservation of
   the deterministic counters, and — the acceptance witness — agreement
   of all four offline checker algorithms plus the online engine on a
   pattern the sharded core actually produced.  The CBR forced-checkpoint
   rule is purely local and guarantees RDT, so every traced pattern must
   verify clean. *)

module Scale = Rdt_harness.Scale
module Checker = Rdt_core.Checker
module Online = Rdt_check.Online
module P = Rdt_pattern.Pattern

let check = Alcotest.(check bool)

let params ~n ~messages ~seed =
  { Scale.default_params with Scale.n; messages; seed }

let test_bit_identical_across_jobs () =
  let p = params ~n:512 ~messages:6_000 ~seed:11 in
  let base = Scale.run ~jobs:1 p in
  List.iter
    (fun jobs ->
      let r = Scale.run ~jobs p in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d output identical" jobs)
        (Format.asprintf "%a" Scale.pp_result base)
        (Format.asprintf "%a" Scale.pp_result r))
    [ 2; 4; 8 ]

let test_conservation () =
  let p = params ~n:300 ~messages:4_321 ~seed:5 in
  let r = Scale.run ~jobs:2 p in
  Alcotest.(check int) "sent = messages" 4_321 r.Scale.sent;
  Alcotest.(check int) "delivered = sent" r.Scale.sent r.Scale.delivered;
  Alcotest.(check int) "events = sends + deliveries" (2 * 4_321) r.Scale.events;
  check "payload entries accumulate" true (r.Scale.payload_entries > 0);
  check "payload bytes cover entries" true (r.Scale.payload_bytes >= 16 * r.Scale.payload_entries);
  check "forced checkpoints occur" true (r.Scale.ckpts_forced > 0);
  Alcotest.(check int) "no messages -> no events" 0
    (Scale.run ~jobs:1 (params ~n:16 ~messages:0 ~seed:1)).Scale.events

let test_seed_sensitivity () =
  let r1 = Scale.run ~jobs:1 (params ~n:128 ~messages:2_000 ~seed:1) in
  let r2 = Scale.run ~jobs:1 (params ~n:128 ~messages:2_000 ~seed:2) in
  check "different seeds diverge" true (r1.Scale.checksum <> r2.Scale.checksum)

let test_shards_independent_of_jobs () =
  Alcotest.(check int) "shards_for is a function of n" (Scale.shards_for 10_000)
    (Scale.shards_for 10_000);
  check "multiple shards at n=10_000" true (Scale.shards_for 10_000 > 1);
  Alcotest.(check int) "single shard for tiny n" 1 (Scale.shards_for 64)

(* the acceptance criterion: four Checker.run algorithms + the online
   engine agree on traces of the sharded engine *)
let test_checkers_agree_on_traced_run () =
  List.iter
    (fun (n, messages, seed) ->
      let r, pat = Scale.run_traced (params ~n ~messages ~seed) in
      check "traced = untraced result" true (r = Scale.run ~jobs:1 (params ~n ~messages ~seed));
      Alcotest.(check int) "pattern carries every message" messages (P.num_messages pat);
      (match P.validate pat with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("invalid pattern from sharded engine: " ^ e));
      let reports = List.map (fun algo -> Checker.run ~algo pat) Checker.all_algos in
      List.iter
        (fun (rep : Checker.report) ->
          check
            (Printf.sprintf "algo %s says RDT (CBR guarantees it)" (Checker.algo_name rep.Checker.algo))
            true rep.Checker.rdt)
        reports;
      let t = Online.check_pattern pat in
      check "online engine agrees" true (Online.rdt_so_far t))
    [ (16, 200, 3); (64, 800, 7); (128, 1_500, 42) ]

let () =
  Alcotest.run "rdt_scale"
    [
      ( "determinism",
        [
          Alcotest.test_case "bit-identical across jobs" `Quick test_bit_identical_across_jobs;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "shards from n only" `Quick test_shards_independent_of_jobs;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "checkers agree on traced runs" `Quick test_checkers_agree_on_traced_run;
        ] );
    ]
