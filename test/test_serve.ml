(* The serving stack, end to end in one process.

   The step-driven [Rdt_serve.Server] loop lets these tests interleave
   client writes and server steps deterministically: no forks, no
   threads, no sleeps.  The differential suites pin the served path to
   the serial [Online.check_trace] oracle — same events, byte-equal
   verdicts — including a stream that violates RDT, one that
   disconnects mid-stream and reattaches, and a durable stream whose
   daemon is SIGKILL-simulated ([Server.abort]) and restarted. *)

module Runtime = Rdt_core.Runtime
module Registry = Rdt_core.Registry
module Trace = Rdt_obs.Trace
module Online = Rdt_check.Online
module Session = Rdt_check.Session
module W = Rdt_check.Session.Wire
module F = Rdt_check.Session.Frame
module Server = Rdt_serve.Server
module Client = Rdt_serve.Client
module Meter = Rdt_obs.Meter

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Workload material                                                   *)
(* ------------------------------------------------------------------ *)

let recorded ?(n = 5) ?(messages = 120) ~protocol ~seed () =
  let env = Rdt_workloads.Registry.find_exn "random" in
  let tr = Trace.ring ~capacity:200_000 in
  let cfg =
    {
      (Runtime.default_config env (Registry.find_exn protocol)) with
      Runtime.n;
      seed;
      max_messages = messages;
      trace = tr;
    }
  in
  ignore (Runtime.run cfg);
  Trace.events tr

let serial events =
  match Online.check_trace events with
  | Ok t -> t
  | Error e -> Alcotest.failf "serial oracle rejected trace: %s" e

let scratch_dir =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rdt-test-serve-%d-%s-%d" (Unix.getpid ()) tag !counter)
    in
    Unix.mkdir d 0o755;
    d

let scratch_socket tag = Filename.concat (scratch_dir tag) "s.sock"

(* ------------------------------------------------------------------ *)
(* In-process pump                                                     *)
(* ------------------------------------------------------------------ *)

type peer = { client : Client.t; mutable inbox : W.response list }

let peer ~socket = { client = Client.connect ~socket; inbox = [] }

let pump server peers pred =
  let budget = ref 200_000 in
  let result = ref None in
  while !result = None do
    decr budget;
    if !budget = 0 then Alcotest.fail "server made no progress";
    ignore (Server.step ~timeout:0.0005 server : int);
    List.iter (fun p -> p.inbox <- p.inbox @ Client.poll p.client) peers;
    result := pred ()
  done;
  Option.get !result

(* Wait until [p]'s inbox holds a response matched by [f]; consume and
   return it (earlier unmatched responses stay queued, in order). *)
let expect server p f =
  pump server [ p ] (fun () ->
      let rec split acc = function
        | [] -> None
        | r :: rest -> (
            match f r with
            | Some v ->
                p.inbox <- List.rev_append acc rest;
                Some v
            | None -> split (r :: acc) rest)
      in
      split [] p.inbox)

let hello server p ~stream ~n =
  Client.send p.client (W.Hello { version = W.version; stream; n });
  expect server p (function W.Welcome { resumed; _ } -> Some resumed | _ -> None)

let goodbye server p =
  Client.send p.client W.Bye;
  expect server p (function
    | W.Goodbye { seen; summary; orphans } -> Some (seen, summary, orphans)
    | _ -> None)

let ask server p ~id query =
  Client.send p.client (W.Query { id; query });
  expect server p (function
    | W.Answer { id = i; answer } when i = id -> Some (Ok answer)
    | W.Failed { id = i; error } when i = id -> Some (Error error)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let roundtrip_requests () =
  let events = recorded ~n:3 ~messages:20 ~protocol:"bhmr" ~seed:7 () in
  let reqs =
    [
      W.Hello { version = 1; stream = "alpha-1._x"; n = 64 };
      W.Events [];
      W.Events events;
      W.Query { id = 0; query = W.Rdt_so_far };
      W.Query { id = 12; query = W.Zcycle };
      W.Query { id = 3; query = W.Summary };
      W.Query { id = 4; query = W.Trackable ((0, 1), (2, 3)) };
      W.Query { id = 5; query = W.Min_gcp [ (0, 0); (1, 2) ] };
      W.Query { id = 6; query = W.Max_gcp [] };
      W.Sync;
      W.Bye;
    ]
  in
  List.iter
    (fun r ->
      match W.decode_request (W.encode_request r) with
      | Ok r' -> check "request roundtrips" true (r = r')
      | Error e -> Alcotest.failf "request failed to roundtrip: %s" e)
    reqs

let roundtrip_responses () =
  let summary = Online.summary (serial (recorded ~n:3 ~messages:20 ~protocol:"bhmr" ~seed:7 ())) in
  let resps =
    [
      W.Welcome { version = 1; stream = "a"; resumed = 0 };
      W.Welcome { version = 1; stream = "a"; resumed = 3140 };
      W.Ack { seen = 0 };
      W.Ack { seen = max_int };
      W.Answer { id = 1; answer = W.Flag true };
      W.Answer { id = 2; answer = W.Flag false };
      W.Answer { id = 3; answer = W.Stats summary };
      W.Answer { id = 4; answer = W.Cut None };
      W.Answer { id = 5; answer = W.Cut (Some [| 0; 3; 1 |]) };
      W.Answer { id = 6; answer = W.Cut (Some [||]) };
      W.Failed { id = 7; error = "checkpoint (9,9) does not exist \"yet\"\n" };
      W.Rejected { code = W.Inconsistent; error = "rolled back twice" };
      W.Rejected { code = W.Unrecoverable; error = "wal: torn record" };
      W.Rejected { code = W.Protocol; error = "frame too large" };
      W.Goodbye { seen = 17; summary; orphans = [] };
      W.Goodbye { seen = 17; summary; orphans = [ 3; 1; 4 ] };
    ]
  in
  List.iter
    (fun r ->
      match W.decode_response (W.encode_response r) with
      | Ok r' -> check "response roundtrips" true (r = r')
      | Error e -> Alcotest.failf "response failed to roundtrip: %s" e)
    resps

let codec_rejects_garbage () =
  List.iter
    (fun s -> check "garbage request rejected" true (Result.is_error (W.decode_request s)))
    [ ""; "null"; "[]"; "{}"; {|{"type":"warp"}|}; {|{"type":"hello","version":1}|} ];
  List.iter
    (fun s -> check "garbage response rejected" true (Result.is_error (W.decode_response s)))
    [ ""; "true"; {|{"type":"ack"}|}; {|{"type":"answer","id":0}|} ]

let exit_codes () =
  Alcotest.(check int) "inconsistent" 2 (W.exit_code_of_reject W.Inconsistent);
  Alcotest.(check int) "protocol" 2 (W.exit_code_of_reject W.Protocol);
  Alcotest.(check int) "unrecoverable" 3 (W.exit_code_of_reject W.Unrecoverable)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame_chunked () =
  let payloads = [ "alpha"; ""; String.make 70_000 'z'; "{\"k\":\"v\"}" ] in
  let wire = String.concat "" (List.map F.encode payloads) in
  (* feed byte by byte, then in ragged chunks: same frames out *)
  List.iter
    (fun chunk ->
      let d = F.decoder () in
      let b = Bytes.of_string wire in
      let i = ref 0 in
      let out = ref [] in
      while !i < Bytes.length b do
        let len = min chunk (Bytes.length b - !i) in
        F.feed d b ~off:!i ~len;
        i := !i + len;
        let rec drain () =
          match F.next d with
          | Ok (Some p) ->
              out := p :: !out;
              drain ()
          | Ok None -> ()
          | Error e -> Alcotest.failf "decoder error on well-formed input: %s" e
        in
        drain ()
      done;
      check
        (Printf.sprintf "chunk size %d reproduces frames" chunk)
        true
        (List.rev !out = payloads);
      Alcotest.(check int) "nothing left buffered" 0 (F.buffered d))
    [ 1; 7; 4096; String.length wire ]

let frame_malformed () =
  let bad =
    [
      "x5 hello\n" (* non-digit length *);
      "99999999999 hi\n" (* length over max_payload (and over 9 digits) *);
      "5,hello\n" (* no separating space *);
      F.encode "hi" ^ "3 abcX" (* wrong terminator on the second frame *);
    ]
  in
  List.iter
    (fun s ->
      let d = F.decoder () in
      F.feed d (Bytes.of_string s) ~off:0 ~len:(String.length s);
      let rec drain () =
        match F.next d with Ok (Some _) -> drain () | (Ok None | Error _) as r -> r
      in
      check "malformed framing detected" true (Result.is_error (drain ()));
      (* poisoned: stays in error even with more (valid) bytes *)
      let v = F.encode "ok" in
      F.feed d (Bytes.of_string v) ~off:0 ~len:(String.length v);
      check "decoder poisoned after framing error" true (Result.is_error (F.next d)))
    bad

(* ------------------------------------------------------------------ *)
(* Protocol-level rejection                                            *)
(* ------------------------------------------------------------------ *)

let with_server ?mapper ?trace cfg f =
  let server = Server.create ?mapper ?trace ~meter:(Meter.create ()) cfg in
  Fun.protect ~finally:(fun () -> Server.close server) (fun () -> f server)

let rejected server p =
  expect server p (function W.Rejected { code; error } -> Some (code, error) | _ -> None)

let test_hello_rejections () =
  let socket = scratch_socket "hello" in
  with_server (Server.default_config ~socket) (fun server ->
      (* wrong protocol version *)
      let p = peer ~socket in
      Client.send p.client (W.Hello { version = W.version + 1; stream = "a"; n = 3 });
      let code, _ = rejected server p in
      check "future version refused" true (code = W.Protocol);
      Client.close p.client;
      (* bad stream names *)
      List.iter
        (fun stream ->
          let p = peer ~socket in
          Client.send p.client (W.Hello { version = W.version; stream; n = 3 });
          let code, _ = rejected server p in
          check (Printf.sprintf "stream name %S refused" stream) true (code = W.Protocol);
          Client.close p.client)
        [ ""; ".hidden"; "-dash"; "sp ace"; "a/b"; String.make 101 'a' ];
      (* events before hello *)
      let p = peer ~socket in
      Client.send p.client (W.Events []);
      let code, _ = rejected server p in
      check "events before hello refused" true (code = W.Protocol);
      Client.close p.client;
      (* n mismatch on reattach *)
      let p = peer ~socket in
      ignore (hello server p ~stream:"s" ~n:4 : int);
      Client.close p.client;
      ignore (pump server [] (fun () -> if Server.step server = 0 then Some () else None));
      let q = peer ~socket in
      Client.send q.client (W.Hello { version = W.version; stream = "s"; n = 5 });
      let code, _ = rejected server q in
      check "n mismatch on reattach refused" true (code = W.Protocol);
      Client.close q.client)

(* ------------------------------------------------------------------ *)
(* Differential: served verdicts = serial Online.check_trace           *)
(* ------------------------------------------------------------------ *)

let stream_specs =
  [
    ("rdt-bhmr-3", "bhmr", 3);
    ("rdt-bhmr-8", "bhmr", 8);
    ("violating-none-1", "none", 1);
    ("violating-none-2", "none", 2);
    ("rdt-bcs", "bcs", 5);
  ]

let test_differential () =
  let socket = scratch_socket "diff" in
  let n = 4 in
  let material =
    List.map
      (fun (name, protocol, seed) ->
        let events = recorded ~n ~messages:60 ~protocol ~seed () in
        (name, events, Online.summary (serial events)))
      stream_specs
  in
  (* the violating streams must actually violate, or this is vacuous *)
  check "a stream violates RDT" true
    (List.exists (fun (_, _, s) -> s.Online.first_violation <> None) material);
  check "a stream keeps RDT" true (List.exists (fun (_, _, s) -> s.Online.rdt) material);
  with_server (Server.default_config ~socket) (fun server ->
      let peers = List.map (fun (name, events, expected) -> (peer ~socket, name, events, expected)) material in
      (* all concurrently: hello, then interleaved event batches *)
      List.iter
        (fun (p, name, _, _) ->
          Alcotest.(check int) "fresh stream" 0 (hello server p ~stream:name ~n))
        peers;
      let rec batches evs = match evs with
        | [] -> []
        | _ ->
            let rec take k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | e :: rest -> take (k - 1) (e :: acc) rest
            in
            let b, rest = take 37 [] evs in
            b :: batches rest
      in
      let queues = List.map (fun (p, _, events, _) -> (p, ref (batches events))) peers in
      let busy () = List.exists (fun (_, q) -> !q <> []) queues in
      while busy () do
        List.iter
          (fun (p, q) ->
            match !q with
            | [] -> ()
            | b :: rest ->
                Client.send p.client (W.Events b);
                q := rest)
          queues;
        ignore (Server.step server : int);
        List.iter (fun (p, _) -> p.inbox <- p.inbox @ Client.poll p.client) queues
      done;
      List.iter
        (fun (p, name, events, expected) ->
          let seen, summary, orphans = goodbye server p in
          Alcotest.(check int) (name ^ ": all events applied") (List.length events) seen;
          check (name ^ ": served summary = serial summary") true (summary = expected);
          check (name ^ ": no orphans at end of run") true (orphans = []);
          Client.close p.client)
        peers)

(* ------------------------------------------------------------------ *)
(* Queries against offline oracles                                     *)
(* ------------------------------------------------------------------ *)

let test_queries_vs_oracles () =
  let socket = scratch_socket "query" in
  let n = 5 in
  let events = recorded ~n ~messages:150 ~protocol:"bhmr" ~seed:11 () in
  let oracle = serial events in
  let pat =
    match Rdt_obs.Replay.rebuild events with
    | Ok pat -> pat
    | Error e -> Alcotest.failf "replay rejected trace: %s" e
  in
  with_server (Server.default_config ~socket) (fun server ->
      let p = peer ~socket in
      ignore (hello server p ~stream:"q" ~n : int);
      Client.send p.client (W.Events events);
      (match ask server p ~id:0 W.Rdt_so_far with
      | Ok (W.Flag b) -> check "rdt_so_far matches" true (b = Online.rdt_so_far oracle)
      | r -> Alcotest.failf "rdt_so_far: unexpected %s" (match r with Error e -> e | _ -> "answer"));
      (match ask server p ~id:1 W.Zcycle with
      | Ok (W.Flag b) -> check "zcycle matches" true (b = Online.zcycle oracle)
      | _ -> Alcotest.fail "zcycle: unexpected answer");
      (match ask server p ~id:2 W.Summary with
      | Ok (W.Stats s) -> check "summary matches" true (s = Online.summary oracle)
      | _ -> Alcotest.fail "summary: unexpected answer");
      (* trackability, including checkpoints beyond the initial ones *)
      let id = ref 10 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          incr id;
          match ask server p ~id:!id (W.Trackable ((i, 1), (j, 1))) with
          | Ok (W.Flag b) ->
              check
                (Printf.sprintf "trackable (%d,1) (%d,1) matches" i j)
                true
                (b = Online.trackable oracle (i, 1) (j, 1))
          | Error e -> Alcotest.failf "trackable: %s" e
          | _ -> Alcotest.fail "trackable: unexpected answer"
        done
      done;
      (* min/max consistent global checkpoints vs the Replay pattern *)
      List.iter
        (fun set ->
          incr id;
          (match ask server p ~id:!id (W.Min_gcp set) with
          | Ok (W.Cut c) ->
              check "min gcp matches Replay oracle" true (c = Rdt_core.Min_gcp.minimum_of_set pat set)
          | _ -> Alcotest.fail "min gcp: unexpected answer");
          incr id;
          match ask server p ~id:!id (W.Max_gcp set) with
          | Ok (W.Cut c) ->
              check "max gcp matches Replay oracle" true (c = Rdt_core.Min_gcp.maximum_of_set pat set)
          | _ -> Alcotest.fail "max gcp: unexpected answer")
        [ [ (0, 0) ]; [ (0, 1); (1, 1) ]; [ (2, 1); (3, 1); (4, 1) ] ];
      (* a query about a checkpoint that does not exist fails the query,
         not the stream *)
      incr id;
      (match ask server p ~id:!id (W.Trackable ((0, 9999), (1, 0))) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "phantom checkpoint should fail the query");
      incr id;
      (match ask server p ~id:!id W.Rdt_so_far with
      | Ok (W.Flag _) -> ()
      | _ -> Alcotest.fail "stream must survive a failed query");
      let seen, summary, _ = goodbye server p in
      Alcotest.(check int) "all events applied" (List.length events) seen;
      check "final summary still matches" true (summary = Online.summary oracle);
      Client.close p.client)

(* ------------------------------------------------------------------ *)
(* Disconnect / reattach                                               *)
(* ------------------------------------------------------------------ *)

let test_reattach_mid_stream () =
  let socket = scratch_socket "reattach" in
  let n = 4 in
  (* the violating stream: the disconnect lands mid-cascade for some
     split points, the reattached client must still converge *)
  List.iter
    (fun (protocol, seed) ->
      let events = recorded ~n ~messages:60 ~protocol ~seed () in
      let expected = Online.summary (serial events) in
      let total = List.length events in
      List.iter
        (fun split ->
          let split = min split total in
          let prefix = List.filteri (fun i _ -> i < split) events in
          let suffix = List.filteri (fun i _ -> i >= split) events in
          let stream = Printf.sprintf "re-%s-%d-%d" protocol seed split in
          with_server (Server.default_config ~socket) (fun server ->
              let p = peer ~socket in
              Alcotest.(check int) "fresh stream" 0 (hello server p ~stream ~n);
              Client.send p.client (W.Events prefix);
              Client.send p.client W.Sync;
              ignore
                (expect server p (function W.Ack { seen } when seen = split -> Some () | _ -> None));
              (* drop the connection without Bye — the stream survives *)
              Client.close p.client;
              ignore (pump server [] (fun () -> if Server.step server = 0 then Some () else None));
              check "stream survives disconnect" true (List.mem stream (Server.streams server));
              let q = peer ~socket in
              Alcotest.(check int) "reattach resumes at the applied prefix" split
                (hello server q ~stream ~n);
              Client.send q.client (W.Events suffix);
              let seen, summary, orphans = goodbye server q in
              Alcotest.(check int) "all events applied" total seen;
              check "resumed summary = serial summary" true (summary = expected);
              check "no orphans at end of run" true (orphans = []);
              Client.close q.client))
        [ 1; 17; total / 2; total - 1 ])
    [ ("bhmr", 3); ("none", 1) ]

(* ------------------------------------------------------------------ *)
(* Backpressure                                                        *)
(* ------------------------------------------------------------------ *)

let test_backpressure () =
  let socket = scratch_socket "bp" in
  let n = 4 in
  let events = recorded ~n ~messages:120 ~protocol:"bhmr" ~seed:5 () in
  let expected = Online.summary (serial events) in
  let meter = Meter.create () in
  let cfg = { (Server.default_config ~socket) with Server.max_batch = 8; max_pending = 16 } in
  let server = Server.create ~meter cfg in
  Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
  let p = peer ~socket in
  ignore (hello server p ~stream:"bp" ~n : int);
  (* many small frames: the pending queue must stay within
     max_pending + one frame even though the client floods *)
  let max_depth = ref 0 in
  let rec flood evs =
    match evs with
    | [] -> ()
    | _ ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | e :: rest -> take (k - 1) (e :: acc) rest
        in
        let frame, rest = take 4 [] evs in
        Client.send p.client (W.Events frame);
        ignore (Server.step server : int);
        (match List.assoc_opt "serve.queue_depth" (Meter.counters meter) with
        | Some d -> max_depth := max !max_depth d
        | None -> ());
        p.inbox <- p.inbox @ Client.poll p.client;
        flood rest
  in
  flood events;
  let seen, summary, _ = goodbye server p in
  Alcotest.(check int) "all events applied" (List.length events) seen;
  check "flooded summary = serial summary" true (summary = expected);
  check
    (Printf.sprintf "queue depth bounded (max seen %d)" !max_depth)
    true
    (!max_depth <= cfg.Server.max_pending + 4);
  Client.close p.client

(* ------------------------------------------------------------------ *)
(* Durable crash + recovery                                            *)
(* ------------------------------------------------------------------ *)

let test_durable_crash_resume () =
  let n = 4 in
  let events = recorded ~n ~messages:80 ~protocol:"bhmr" ~seed:9 () in
  let expected = Online.summary (serial events) in
  let total = List.length events in
  let dir = scratch_dir "crash" in
  let socket = Filename.concat dir "s.sock" in
  let cfg =
    {
      (Server.default_config ~socket) with
      Server.durable_root = Some (Filename.concat dir "state");
      snapshot_every = 40;
    }
  in
  let split = total / 2 in
  let prefix = List.filteri (fun i _ -> i < split) events in
  (* first daemon: applies the prefix, then dies without syncing *)
  let server = Server.create ~meter:(Meter.create ()) cfg in
  let p = peer ~socket in
  Alcotest.(check int) "fresh stream" 0 (hello server p ~stream:"crashy" ~n);
  Client.send p.client (W.Events prefix);
  ignore
    (expect server p (function W.Ack { seen } when seen = split -> Some () | _ -> None));
  Client.close p.client;
  Server.abort server;
  (* second daemon, same root: the stream recovers from WAL + snapshots *)
  let server = Server.create ~meter:(Meter.create ()) cfg in
  Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
  let q = peer ~socket in
  let resumed = hello server q ~stream:"crashy" ~n in
  check
    (Printf.sprintf "recovery kept a durable prefix (resumed %d of %d applied)" resumed split)
    true
    (resumed > 0 && resumed <= split);
  (* the client skips what the daemon kept and replays the rest *)
  let rest = List.filteri (fun i _ -> i >= resumed) events in
  Client.send q.client (W.Events rest);
  let seen, summary, orphans = goodbye server q in
  Alcotest.(check int) "all events applied after recovery" total seen;
  check "recovered summary = serial summary" true (summary = expected);
  check "no orphans" true (orphans = []);
  Client.close q.client

(* ------------------------------------------------------------------ *)

let () =
  (* a dropped in-process connection must never kill the test runner *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "requests roundtrip" `Quick roundtrip_requests;
          Alcotest.test_case "responses roundtrip" `Quick roundtrip_responses;
          Alcotest.test_case "garbage rejected" `Quick codec_rejects_garbage;
          Alcotest.test_case "exit-code table" `Quick exit_codes;
        ] );
      ( "framing",
        [
          Alcotest.test_case "any chunking reproduces frames" `Quick frame_chunked;
          Alcotest.test_case "malformed framing poisons the decoder" `Quick frame_malformed;
        ] );
      ( "protocol",
        [ Alcotest.test_case "hello rejections" `Quick test_hello_rejections ] );
      ( "differential",
        [
          Alcotest.test_case "N served streams = serial checker" `Quick test_differential;
          Alcotest.test_case "queries match offline oracles" `Quick test_queries_vs_oracles;
          Alcotest.test_case "disconnect + reattach converges" `Quick test_reattach_mid_stream;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "backpressure bounds the queue" `Quick test_backpressure;
          Alcotest.test_case "durable crash + resume" `Quick test_durable_crash_resume;
        ] );
    ]
