(* Randomized property suite for the reliable-delivery transport.

   QCheck generates fault schedules (drop/dup/reorder rates, partition
   windows, retransmission parameters, traffic shapes) via the shared
   {!Rdt_test_helpers.Gen.link_scenario} generator and drives the
   per-link state machine in isolation.  Invariants checked on every
   schedule: the link drains, accepted = delivered + undeliverable,
   delivery is exactly-once FIFO, and the stats counters are coherent.
   Plus a directed test that re-handles wire packets verbatim to pin down
   idempotent duplicate suppression. *)

module Transport = Rdt_dist.Transport
module Faults = Rdt_dist.Faults
module Channel = Rdt_dist.Channel
module Rng = Rdt_dist.Rng
module EQ = Rdt_dist.Event_queue
module Gen = Rdt_test_helpers.Gen

let qt = QCheck_alcotest.to_alcotest
let scenario_arbitrary = Gen.link_scenario_arbitrary

(* Run the scenario to completion; returns deliveries in order, the
   undeliverable set and the final stats. *)
let run_scenario (s : Gen.link_scenario) =
  let params =
    { Transport.default_params with retx_timeout = s.retx_timeout; max_retx = s.max_retx }
  in
  let tp =
    Transport.create ~n:2 ~params ~faults:(Gen.faults_of_link s)
      ~channel:(Channel.Uniform (5, 60)) ~rng:(Rng.create s.link_seed) ()
  in
  let q = EQ.create () in
  let delivered = ref [] and undeliv = ref [] in
  let apply now emits =
    ignore now;
    List.iter
      (function
        | Transport.Deliver { msg; _ } -> delivered := msg :: !delivered
        | Transport.Wire { at; wire } -> EQ.schedule q ~time:at wire
        | Transport.Undeliverable { msg; _ } -> undeliv := msg :: !undeliv)
      emits
  in
  for i = 0 to s.messages - 1 do
    apply 0 (Transport.send tp ~now:(i * s.send_gap) ~src:0 ~dst:1 i)
  done;
  let rec loop () =
    match EQ.pop q with
    | None -> ()
    | Some (t, w) ->
        apply t (Transport.handle tp ~now:t w);
        loop ()
  in
  loop ();
  (tp, List.rev !delivered, !undeliv)

let prop_conservation =
  QCheck.Test.make ~name:"accepted = delivered + undeliverable, and the link drains" ~count:150
    scenario_arbitrary (fun s ->
      let tp, delivered, undeliv = run_scenario s in
      let stats = Transport.stats tp in
      Transport.in_flight tp = 0
      && stats.Transport.accepted = s.messages
      && stats.Transport.accepted = stats.Transport.delivered + stats.Transport.undeliverable
      && List.length delivered = stats.Transport.delivered
      && List.length undeliv = stats.Transport.undeliverable)

let prop_exactly_once_fifo =
  QCheck.Test.make ~name:"exactly-once FIFO delivery" ~count:150 scenario_arbitrary (fun s ->
      let _, delivered, undeliv = run_scenario s in
      (* strictly increasing payloads: in order, no duplicate *)
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      (* delivered and undeliverable partition the sent payloads *)
      let all = List.sort compare (delivered @ undeliv) in
      increasing delivered && all = List.init s.messages Fun.id)

let prop_reliable_when_faultless =
  QCheck.Test.make ~name:"no faults: everything delivered, nothing retransmitted spuriously"
    ~count:50 scenario_arbitrary (fun s ->
      let s = { s with Gen.drop = 0.0; dup = 0.0; reorder = 0.0; partition = None } in
      let tp, delivered, undeliv = run_scenario s in
      let stats = Transport.stats tp in
      undeliv = []
      && delivered = List.init s.messages Fun.id
      && stats.Transport.packets_dropped = 0
      && stats.Transport.duplicated = 0)

let prop_deterministic =
  QCheck.Test.make ~name:"same scenario, same outcome" ~count:40 scenario_arbitrary (fun s ->
      let _, d1, u1 = run_scenario s in
      let _, d2, u2 = run_scenario s in
      d1 = d2 && u1 = u2)

(* ------------------------------------------------------------------ *)
(* Directed: idempotent duplicate suppression                          *)
(* ------------------------------------------------------------------ *)

let test_duplicate_data_suppressed () =
  (* replay every Data packet a second time, one tick later: each copy
     past the first must be discarded without a second delivery *)
  let tp =
    Transport.create ~n:2 ~params:Transport.default_params ~faults:Faults.none
      ~channel:(Channel.Uniform (5, 10)) ~rng:(Rng.create 11) ()
  in
  let q = EQ.create () in
  let delivered = ref [] in
  let apply now emits =
    ignore now;
    List.iter
      (function
        | Transport.Deliver { msg; _ } -> delivered := msg :: !delivered
        | Transport.Wire { at; wire } ->
            EQ.schedule q ~time:at wire;
            (match wire with
            | Transport.Data _ -> EQ.schedule q ~time:(at + 1) wire
            | Transport.Ack _ | Transport.Retx_timer _ -> ())
        | Transport.Undeliverable _ -> Alcotest.fail "nothing is undeliverable here")
      emits
  in
  for i = 0 to 29 do
    apply 0 (Transport.send tp ~now:0 ~src:0 ~dst:1 i)
  done;
  let rec loop () =
    match EQ.pop q with
    | None -> ()
    | Some (t, w) ->
        apply t (Transport.handle tp ~now:t w);
        loop ()
  in
  loop ();
  Alcotest.(check (list int)) "each message delivered exactly once"
    (List.init 30 Fun.id) (List.rev !delivered);
  let stats = Transport.stats tp in
  Alcotest.(check bool) "duplicates were seen and suppressed" true
    (stats.Transport.duplicates_suppressed >= 30);
  Alcotest.(check int) "drained" 0 (Transport.in_flight tp)

(* Satellite regression: the per-link table must be sparse.  A transport
   over n = 10_000 endpoints with 100 live links has to allocate O(links)
   words — the old [Array.init (n * n)] layout was ~10^8 link records
   before the first send. *)
let test_sparse_link_table () =
  let n = 10_000 in
  let tp =
    Transport.create ~n ~params:Transport.default_params ~faults:Faults.none
      ~channel:(Channel.Fixed 5) ~rng:(Rng.create 42) ()
  in
  let fresh = Obj.reachable_words (Obj.repr tp) in
  Alcotest.(check bool)
    (Printf.sprintf "construction allocates O(1), not O(n^2) (%d words)" fresh)
    true (fresh < 5_000);
  (* touch 100 distinct links *)
  let q = EQ.create () in
  let delivered = ref 0 in
  let rec apply emits =
    List.iter
      (function
        | Transport.Deliver _ -> incr delivered
        | Transport.Wire { at; wire } -> EQ.schedule q ~time:at wire
        | Transport.Undeliverable _ -> Alcotest.fail "faultless link abandoned a message")
      emits;
    match EQ.pop q with
    | None -> ()
    | Some (t, w) -> apply (Transport.handle tp ~now:t w)
  in
  for k = 0 to 99 do
    apply (Transport.send tp ~now:0 ~src:(k * 97 mod n) ~dst:(((k * 97) + 1) mod n) k)
  done;
  Alcotest.(check int) "100 live links" 100 (Transport.live_links tp);
  Alcotest.(check int) "all delivered" 100 !delivered;
  Alcotest.(check int) "drained" 0 (Transport.in_flight tp);
  let used = Obj.reachable_words (Obj.repr tp) in
  Alcotest.(check bool)
    (Printf.sprintf "after 100 links still O(links) (%d words)" used)
    true (used < 100_000)

let () =
  Alcotest.run "rdt_transport_random"
    [
      ( "random schedules",
        [
          qt prop_conservation;
          qt prop_exactly_once_fifo;
          qt prop_reliable_when_faultless;
          qt prop_deterministic;
        ] );
      ( "duplicates",
        [ Alcotest.test_case "idempotent re-handling of Data wires" `Quick test_duplicate_data_suppressed ] );
      ( "allocation",
        [ Alcotest.test_case "sparse link table at n=10_000" `Quick test_sparse_link_table ] );
    ]
