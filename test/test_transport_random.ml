(* Randomized property suite for the reliable-delivery transport.

   QCheck generates fault schedules (drop/dup/reorder rates, partition
   windows, retransmission parameters, traffic shapes) and drives the
   per-link state machine in isolation.  Invariants checked on every
   schedule: the link drains, accepted = delivered + undeliverable,
   delivery is exactly-once FIFO, and the stats counters are coherent.
   Plus a directed test that re-handles wire packets verbatim to pin down
   idempotent duplicate suppression. *)

module Transport = Rdt_dist.Transport
module Faults = Rdt_dist.Faults
module Channel = Rdt_dist.Channel
module Rng = Rdt_dist.Rng
module EQ = Rdt_dist.Event_queue

let qt = QCheck_alcotest.to_alcotest

(* One generated scenario: a single src -> dst link under faults. *)
type scenario = {
  seed : int;
  drop : float;
  dup : float;
  reorder : float;
  window : int;
  partition : (int * int) option;  (* dst cut off during [from_t, to_t) *)
  max_retx : int;
  retx_timeout : int;
  messages : int;
  send_gap : int;  (* ticks between consecutive sends *)
}

let scenario_gen =
  let open QCheck.Gen in
  let* seed = nat in
  let* drop = float_bound_inclusive 0.4 in
  let* dup = float_bound_inclusive 0.3 in
  let* reorder = float_bound_inclusive 0.3 in
  let* window = 1 -- 80 in
  let* partition =
    frequency
      [ (2, return None); (1, map (fun a -> Some (a, a + 500)) (0 -- 1500)) ]
  in
  let* max_retx = 6 -- 30 in
  let* retx_timeout = 50 -- 400 in
  let* messages = 1 -- 120 in
  let+ send_gap = 0 -- 40 in
  { seed; drop; dup; reorder; window; partition; max_retx; retx_timeout; messages; send_gap }

let print_scenario s =
  Printf.sprintf
    "{seed=%d drop=%.2f dup=%.2f reorder=%.2f/%d partition=%s max_retx=%d rto=%d msgs=%d gap=%d}"
    s.seed s.drop s.dup s.reorder s.window
    (match s.partition with None -> "-" | Some (a, b) -> Printf.sprintf "%d-%d" a b)
    s.max_retx s.retx_timeout s.messages s.send_gap

let scenario_arbitrary = QCheck.make ~print:print_scenario scenario_gen

let faults_of s =
  {
    Faults.drop = s.drop;
    dup = s.dup;
    reorder = s.reorder;
    reorder_window = (if s.reorder > 0.0 then s.window else 0);
    partitions =
      (match s.partition with
      | None -> []
      | Some (from_t, to_t) -> [ { Faults.between = [ 1 ]; from_t; to_t } ]);
  }

(* Run the scenario to completion; returns deliveries in order, the
   undeliverable set and the final stats. *)
let run_scenario s =
  let params =
    { Transport.default_params with retx_timeout = s.retx_timeout; max_retx = s.max_retx }
  in
  let tp =
    Transport.create ~n:2 ~params ~faults:(faults_of s) ~channel:(Channel.Uniform (5, 60))
      ~rng:(Rng.create s.seed) ()
  in
  let q = EQ.create () in
  let delivered = ref [] and undeliv = ref [] in
  let apply now emits =
    ignore now;
    List.iter
      (function
        | Transport.Deliver { msg; _ } -> delivered := msg :: !delivered
        | Transport.Wire { at; wire } -> EQ.schedule q ~time:at wire
        | Transport.Undeliverable { msg; _ } -> undeliv := msg :: !undeliv)
      emits
  in
  for i = 0 to s.messages - 1 do
    apply 0 (Transport.send tp ~now:(i * s.send_gap) ~src:0 ~dst:1 i)
  done;
  let rec loop () =
    match EQ.pop q with
    | None -> ()
    | Some (t, w) ->
        apply t (Transport.handle tp ~now:t w);
        loop ()
  in
  loop ();
  (tp, List.rev !delivered, !undeliv)

let prop_conservation =
  QCheck.Test.make ~name:"accepted = delivered + undeliverable, and the link drains" ~count:150
    scenario_arbitrary (fun s ->
      let tp, delivered, undeliv = run_scenario s in
      let stats = Transport.stats tp in
      Transport.in_flight tp = 0
      && stats.Transport.accepted = s.messages
      && stats.Transport.accepted = stats.Transport.delivered + stats.Transport.undeliverable
      && List.length delivered = stats.Transport.delivered
      && List.length undeliv = stats.Transport.undeliverable)

let prop_exactly_once_fifo =
  QCheck.Test.make ~name:"exactly-once FIFO delivery" ~count:150 scenario_arbitrary (fun s ->
      let _, delivered, undeliv = run_scenario s in
      (* strictly increasing payloads: in order, no duplicate *)
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      (* delivered and undeliverable partition the sent payloads *)
      let all = List.sort compare (delivered @ undeliv) in
      increasing delivered && all = List.init s.messages Fun.id)

let prop_reliable_when_faultless =
  QCheck.Test.make ~name:"no faults: everything delivered, nothing retransmitted spuriously"
    ~count:50 scenario_arbitrary (fun s ->
      let s = { s with drop = 0.0; dup = 0.0; reorder = 0.0; partition = None } in
      let tp, delivered, undeliv = run_scenario s in
      let stats = Transport.stats tp in
      undeliv = []
      && delivered = List.init s.messages Fun.id
      && stats.Transport.packets_dropped = 0
      && stats.Transport.duplicated = 0)

let prop_deterministic =
  QCheck.Test.make ~name:"same scenario, same outcome" ~count:40 scenario_arbitrary (fun s ->
      let _, d1, u1 = run_scenario s in
      let _, d2, u2 = run_scenario s in
      d1 = d2 && u1 = u2)

(* ------------------------------------------------------------------ *)
(* Directed: idempotent duplicate suppression                          *)
(* ------------------------------------------------------------------ *)

let test_duplicate_data_suppressed () =
  (* replay every Data packet a second time, one tick later: each copy
     past the first must be discarded without a second delivery *)
  let tp =
    Transport.create ~n:2 ~params:Transport.default_params ~faults:Faults.none
      ~channel:(Channel.Uniform (5, 10)) ~rng:(Rng.create 11) ()
  in
  let q = EQ.create () in
  let delivered = ref [] in
  let apply now emits =
    ignore now;
    List.iter
      (function
        | Transport.Deliver { msg; _ } -> delivered := msg :: !delivered
        | Transport.Wire { at; wire } ->
            EQ.schedule q ~time:at wire;
            (match wire with
            | Transport.Data _ -> EQ.schedule q ~time:(at + 1) wire
            | Transport.Ack _ | Transport.Retx_timer _ -> ())
        | Transport.Undeliverable _ -> Alcotest.fail "nothing is undeliverable here")
      emits
  in
  for i = 0 to 29 do
    apply 0 (Transport.send tp ~now:0 ~src:0 ~dst:1 i)
  done;
  let rec loop () =
    match EQ.pop q with
    | None -> ()
    | Some (t, w) ->
        apply t (Transport.handle tp ~now:t w);
        loop ()
  in
  loop ();
  Alcotest.(check (list int)) "each message delivered exactly once"
    (List.init 30 Fun.id) (List.rev !delivered);
  let stats = Transport.stats tp in
  Alcotest.(check bool) "duplicates were seen and suppressed" true
    (stats.Transport.duplicates_suppressed >= 30);
  Alcotest.(check int) "drained" 0 (Transport.in_flight tp)

let () =
  Alcotest.run "rdt_transport_random"
    [
      ( "random schedules",
        [
          qt prop_conservation;
          qt prop_exactly_once_fifo;
          qt prop_reliable_when_faultless;
          qt prop_deterministic;
        ] );
      ( "duplicates",
        [ Alcotest.test_case "idempotent re-handling of Data wires" `Quick test_duplicate_data_suppressed ] );
    ]
