(* Oracle cross-checks: brute-force Z-path enumeration vs the optimised
   analyses and all three RDT checkers.

   On small random patterns:
   - explicit DFS over the message graph (the textbook Z-path definition)
     agrees with the R-graph: [Rgraph.reaches (i,x) (j,y)] iff the pair is
     a same-process forward pair or some Z-path leaves [P_i] in an
     interval >= x and is delivered to [P_j] in an interval <= y;
   - the same enumeration agrees with [Chains.zigzag] (Netzer-Xu form);
   - the fully naive RDT verdict — every R-path pair (by naive closure)
     is trackable (by naive causal-chain search) — matches [Checker.run],
     [Checker.run ~algo:`Chains] and [Checker.run ~algo:`Doubling]. *)

module P = Rdt_pattern.Pattern
module T = Rdt_pattern.Types
module Rgraph = Rdt_pattern.Rgraph
module Chains = Rdt_pattern.Chains
module Checker = Rdt_core.Checker
module Naive = Rdt_test_helpers.Naive

let qt = QCheck_alcotest.to_alcotest

let all_ckpts pat =
  let cks = ref [] in
  P.iter_ckpts pat (fun c -> cks := (c.T.owner, c.T.index) :: !cks);
  !cks

(* Brute-force Z-path enumeration, straight from the definition: is there
   a message chain [m_1; ...; m_q] with [src m_1 = i],
   [send_interval m_1 >= x0], [dst m_q = j], [recv_interval m_q <= y],
   and [m_{v+1}] sent by [dst m_v] no earlier than the interval that
   delivered [m_v]? *)
let zpath pat ~i ~x0 ~j ~y =
  let msgs = P.messages pat in
  let nm = Array.length msgs in
  let visited = Array.make nm false in
  let rec dfs id =
    let m = msgs.(id) in
    (m.T.dst = j && m.T.recv_interval <= y)
    || (not visited.(id))
       && begin
            visited.(id) <- true;
            let found = ref false in
            for id' = 0 to nm - 1 do
              let m' = msgs.(id') in
              if (not !found) && m'.T.src = m.T.dst && m.T.recv_interval <= m'.T.send_interval
              then found := dfs id'
            done;
            !found
          end
  in
  let found = ref false in
  for id = 0 to nm - 1 do
    if (not !found) && msgs.(id).T.src = i && msgs.(id).T.send_interval >= x0 then
      found := dfs id
  done;
  !found

let zpath_equals_rgraph =
  QCheck.Test.make ~name:"R-graph reachability = same-process order or Z-path" ~count:60
    Rdt_test_helpers.Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Rdt_test_helpers.Gen.pattern_of_recipe recipe in
      let g = Rgraph.build pat in
      let cks = all_ckpts pat in
      List.for_all
        (fun (i, x) ->
          List.for_all
            (fun (j, y) ->
              Rgraph.reaches g (i, x) (j, y) = ((i = j && x <= y) || zpath pat ~i ~x0:x ~j ~y))
            cks)
        cks)

let zpath_equals_chains_zigzag =
  QCheck.Test.make ~name:"Z-path enumeration = Chains.zigzag (Netzer-Xu)" ~count:60
    Rdt_test_helpers.Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Rdt_test_helpers.Gen.pattern_of_recipe recipe in
      (* zigzag after C_{i,x}: first message sent in an interval >= x+1 *)
      let cks = all_ckpts pat in
      List.for_all
        (fun (i, x) ->
          List.for_all
            (fun (j, y) -> Chains.zigzag pat (i, x) (j, y) = zpath pat ~i ~x0:(x + 1) ~j ~y)
            cks)
        cks)

let naive_rdt pat =
  (* RDT from first principles: every R-path pair (naive closure over the
     naive edge list) is trackable (naive causal-chain DFS) *)
  let cks = all_ckpts pat in
  List.for_all
    (fun a ->
      List.for_all (fun b -> (not (Naive.reaches pat a b)) || Naive.trackable pat a b) cks)
    cks

let naive_rdt_matches_checkers =
  QCheck.Test.make ~name:"naive RDT verdict = all three checkers" ~count:100
    Rdt_test_helpers.Gen.small_recipe_arbitrary (fun recipe ->
      let pat = Rdt_test_helpers.Gen.pattern_of_recipe recipe in
      let expect = naive_rdt pat in
      (Checker.run pat).Checker.rdt = expect
      && (Checker.run ~algo:`Chains pat).Checker.rdt = expect
      && (Checker.run ~algo:`Doubling pat).Checker.rdt = expect)

(* Directed sanity anchors on the paper's fixtures, so a silent generator
   regression (e.g. only trivial patterns) cannot mask the properties. *)
let test_fixture_verdicts () =
  let fx = Rdt_test_helpers.Fixtures.figure1 () in
  Alcotest.(check bool) "figure 1 is not RDT (naive)" false (naive_rdt fx.pattern);
  Alcotest.(check bool) "figure 1 is not RDT (checker)" false
    (Checker.run fx.pattern).Checker.rdt;
  let pat = Rdt_test_helpers.Fixtures.pairwise_insufficient () in
  Alcotest.(check bool) "pairwise-insufficient fixture agrees" (naive_rdt pat)
    (Checker.run pat).Checker.rdt

(* The same-process edge of trackability (§4.1.2): a Z-path can close an
   R-path from a checkpoint back to an *earlier* checkpoint of the same
   process, and a backwards R-path is never trackable — no causal chain
   runs back in time.  Construction: m2 is sent by P1 before it receives
   m1, but both fall in P1's single interval, so [m1; m2] is a Z-path
   from after C_{0,2} to before C_{0,1}, giving C_{0,2} ~> C_{0,1}. *)
let test_backwards_same_process_rpath () =
  let b = P.Builder.create ~n:2 in
  let m2 = P.Builder.send ~time:10 b ~src:1 ~dst:0 in
  P.Builder.recv ~time:20 b m2;
  ignore (P.Builder.checkpoint ~time:30 b 0) (* C_{0,1} *);
  ignore (P.Builder.checkpoint ~time:40 b 0) (* C_{0,2} *);
  let m1 = P.Builder.send ~time:50 b ~src:0 ~dst:1 in
  P.Builder.recv ~time:60 b m1;
  let pat = P.Builder.finish b in
  Alcotest.(check bool) "zigzag closes the backwards pair" true
    (zpath pat ~i:0 ~x0:2 ~j:0 ~y:1);
  let g = Rgraph.build pat in
  Alcotest.(check bool) "R-graph has C_{0,2} ~> C_{0,1}" true (Rgraph.reaches g (0, 2) (0, 1));
  Alcotest.(check bool) "not RDT (naive oracle)" false (naive_rdt pat);
  Alcotest.(check bool) "not RDT (R-graph vs TDV)" false (Checker.run pat).Checker.rdt;
  Alcotest.(check bool) "not RDT (chain search)" false (Checker.run ~algo:`Chains pat).Checker.rdt;
  Alcotest.(check bool) "not RDT (CM doubling)" false (Checker.run ~algo:`Doubling pat).Checker.rdt

let test_zpath_nontrivial () =
  (* the generator must exercise both verdicts *)
  let verdicts =
    List.init 40 (fun seed ->
        naive_rdt (Rdt_test_helpers.Gen.random_pattern ~n:3 ~steps:25 ~seed ()))
  in
  Alcotest.(check bool) "both RDT and non-RDT patterns occur" true
    (List.mem true verdicts && List.mem false verdicts)

let () =
  Alcotest.run "rdt_oracle"
    [
      ( "z-paths",
        [ qt zpath_equals_rgraph; qt zpath_equals_chains_zigzag ] );
      ( "rdt verdict",
        [
          qt naive_rdt_matches_checkers;
          Alcotest.test_case "paper fixtures" `Quick test_fixture_verdicts;
          Alcotest.test_case "backwards same-process R-path" `Quick
            test_backwards_same_process_rpath;
          Alcotest.test_case "generator exercises both verdicts" `Quick test_zpath_nontrivial;
        ] );
    ]
